(* Tests for the baseline CTMC pipeline: the chain representation,
   explicit-state exploration, lumping, and uniformization — validated
   against closed-form Markov chain solutions. *)

module Ctmc = Slimsim_ctmc.Ctmc
module Explorer = Slimsim_ctmc.Explorer
module Lumping = Slimsim_ctmc.Lumping
module Transient = Slimsim_ctmc.Transient
module Analysis = Slimsim_ctmc.Analysis
module Loader = Slimsim_slim.Loader

let load src =
  match Loader.load_string src with
  | Ok l -> l.Loader.network
  | Error e -> Alcotest.failf "load failed: %s" e

let goal net src =
  match Loader.parse_goal net src with
  | Ok g -> g
  | Error e -> Alcotest.failf "goal failed: %s" e

(* --- representation --- *)

let test_ctmc_make () =
  let c =
    Ctmc.make ~n_states:3
      ~initial:[ (0, 1.0) ]
      ~transitions:[ (0, 1, 2.0); (0, 1, 3.0); (1, 2, 1.0) ]
      ~goal:[| false; false; true |]
  in
  Alcotest.(check (float 1e-9)) "parallel edges merge" 5.0 (Ctmc.exit_rate c 0);
  Alcotest.(check int) "transition count" 2 (Ctmc.n_transitions c);
  Alcotest.(check (float 1e-9)) "max exit" 5.0 (Ctmc.max_exit_rate c);
  Alcotest.check_raises "bad initial mass"
    (Invalid_argument "Ctmc.make: initial distribution must sum to 1") (fun () ->
      ignore (Ctmc.make ~n_states:1 ~initial:[ (0, 0.5) ] ~transitions:[] ~goal:[| false |]))

let test_uniformized_rows () =
  let c =
    Ctmc.make ~n_states:2 ~initial:[ (0, 1.0) ]
      ~transitions:[ (0, 1, 2.0) ]
      ~goal:[| false; true |]
  in
  let p = Ctmc.uniformized_dtmc c ~q:4.0 in
  Array.iter
    (fun row ->
      let total = Array.fold_left (fun acc (_, x) -> acc +. x) 0.0 row in
      Alcotest.(check (float 1e-12)) "row sums to one" 1.0 total)
    p

(* --- transient analysis against closed forms --- *)

let test_two_state_exponential () =
  let lambda = 0.3 in
  let c =
    Ctmc.make ~n_states:2 ~initial:[ (0, 1.0) ]
      ~transitions:[ (0, 1, lambda) ]
      ~goal:[| false; true |]
  in
  List.iter
    (fun t ->
      let expected = 1.0 -. exp (-.lambda *. t) in
      Alcotest.(check (float 1e-8))
        (Printf.sprintf "1 - e^{-lt} at t=%g" t)
        expected
        (Transient.reach_probability c ~horizon:t))
    [ 0.0; 0.5; 1.0; 5.0; 20.0 ]

let test_erlang_chain () =
  (* a -> b -> c with equal rates: P(reach c by t) = 1 - e^{-lt}(1 + lt) *)
  let lambda = 0.5 in
  let c =
    Ctmc.make ~n_states:3 ~initial:[ (0, 1.0) ]
      ~transitions:[ (0, 1, lambda); (1, 2, lambda) ]
      ~goal:[| false; false; true |]
  in
  List.iter
    (fun t ->
      let lt = lambda *. t in
      let expected = 1.0 -. (exp (-.lt) *. (1.0 +. lt)) in
      Alcotest.(check (float 1e-8))
        (Printf.sprintf "erlang-2 at t=%g" t)
        expected
        (Transient.reach_probability c ~horizon:t))
    [ 0.5; 2.0; 10.0 ]

let test_goal_absorbing () =
  (* passing through the goal counts even if the chain then leaves it:
     the analysis makes goal states absorbing *)
  let c =
    Ctmc.make ~n_states:2 ~initial:[ (0, 1.0) ]
      ~transitions:[ (0, 1, 1.0); (1, 0, 1000.0) ]
      ~goal:[| false; true |]
  in
  let p = Transient.reach_probability c ~horizon:5.0 in
  Alcotest.(check bool) "visit counted despite fast return" true (p > 0.99)

let test_initial_goal_mass () =
  let c =
    Ctmc.make ~n_states:2
      ~initial:[ (0, 0.25); (1, 0.75) ]
      ~transitions:[] ~goal:[| false; true |]
  in
  Alcotest.(check (float 1e-12)) "horizon 0 returns initial mass" 0.75
    (Transient.reach_probability c ~horizon:0.0);
  Alcotest.(check (float 1e-12)) "absorbing chain stays" 0.75
    (Transient.reach_probability c ~horizon:100.0)

let test_poisson_weights () =
  let lambda = 7.3 in
  let total = ref 0.0 in
  for k = 0 to 200 do
    total := !total +. exp (Transient.log_poisson_weight ~lambda k)
  done;
  Alcotest.(check (float 1e-9)) "weights sum to 1" 1.0 !total;
  Alcotest.(check bool) "mode near lambda" true
    (Transient.log_poisson_weight ~lambda 7
    > Transient.log_poisson_weight ~lambda 2)

(* --- explorer --- *)

let test_explorer_two_state () =
  let net = load {|
device D
features
  v: out data port bool := false;
end D;
device implementation D.I
modes
  a: initial mode;
  b: mode;
transitions
  a -[rate 0.3 then v := true]-> b;
end D.I;
root D.I;
|} in
  let g = goal net "v" in
  let ctmc, stats = Explorer.explore net ~goal:g in
  Alcotest.(check int) "two stable states" 2 stats.Explorer.stable_states;
  Alcotest.(check int) "one transition" 1 stats.Explorer.transitions;
  Alcotest.(check (float 1e-8)) "matches closed form"
    (1.0 -. exp (-0.3 *. 4.0))
    (Transient.reach_probability ctmc ~horizon:4.0)

let test_explorer_immediate_elimination () =
  (* a rate transition into a vanishing state with two immediate exits:
     the closure splits the mass equally (the simulator's rule) *)
  let net = load {|
device D
features
  v: out data port int := 0;
end D;
device implementation D.I
modes
  a: initial mode;
  hub: mode;
  l: mode;
  r: mode;
transitions
  a -[rate 1.0]-> hub;
  hub -[then v := 1]-> l;
  hub -[then v := 2]-> r;
end D.I;
root D.I;
|} in
  let g = goal net "v = 1" in
  let ctmc, stats = Explorer.explore net ~goal:g in
  (* hub is vanishing: only a, l, r remain *)
  Alcotest.(check int) "vanishing state eliminated" 3 stats.Explorer.stable_states;
  Alcotest.(check bool) "closure visited the hub" true (stats.Explorer.vanishing_visits > 0);
  let p = Transient.reach_probability ctmc ~horizon:1000.0 in
  Alcotest.(check (float 1e-6)) "half the mass goes left" 0.5 p

let test_explorer_rejects_timed () =
  let net = load Slimsim_models.Gps.nominal_only in
  let g = goal net "measurement" in
  match Explorer.explore net ~goal:g with
  | exception Explorer.Not_untimed _ -> ()
  | _ -> Alcotest.fail "timed models must be rejected"

let test_explorer_immediate_cycle () =
  let net = load {|
device D
features
  v: out data port bool := false;
end D;
device implementation D.I
modes
  a: initial mode;
  b: mode;
transitions
  a -[]-> b;
  b -[]-> a;
end D.I;
root D.I;
|} in
  let g = goal net "v" in
  match Explorer.explore net ~goal:g with
  | exception Explorer.Immediate_cycle _ -> ()
  | _ -> Alcotest.fail "immediate cycles must be detected"

let test_explorer_state_cap () =
  let net = load (Slimsim_models.Sensor_filter.source ~n:3) in
  let g = goal net (Slimsim_models.Sensor_filter.goal_all_failed ~n:3) in
  match Explorer.explore ~max_states:10 net ~goal:g with
  | exception Explorer.Too_many_states _ -> ()
  | _ -> Alcotest.fail "the state cap must be enforced"

(* --- bounded until on the chain pipeline --- *)

let two_phase_model = {|
device D
features
  v: out data port int := 0;
end D;
device implementation D.I
modes
  a: initial mode;
  b: mode;
  c: mode;
transitions
  a -[rate 0.1 then v := 1]-> b;
  b -[rate 0.2 then v := 2]-> c;
end D.I;
root D.I;
|}

let test_until_pipeline () =
  let net = load two_phase_model in
  let g2 = goal net "v = 2" and g1 = goal net "v = 1" in
  let pass_through_b = goal net "v <= 1" and skip_b = goal net "v = 0" in
  let t = 8.0 in
  (* hold v<=1: same as plain reachability of v=2 *)
  let ctmc, _ = Explorer.explore ~hold:pass_through_b net ~goal:g2 in
  let l1, l2 = (0.1, 0.2) in
  let expected =
    1.0 -. ((l2 *. exp (-.l1 *. t)) -. (l1 *. exp (-.l2 *. t))) /. (l2 -. l1)
  in
  Alcotest.(check (float 1e-8)) "hold-free until = reachability" expected
    (Transient.reach_probability ctmc ~horizon:t);
  (* hold v=0: the path must reach v=2 without visiting v=1 — impossible *)
  let ctmc0, _ = Explorer.explore ~hold:skip_b net ~goal:g2 in
  Alcotest.(check (float 1e-12)) "blocked until is zero" 0.0
    (Transient.reach_probability ctmc0 ~horizon:t);
  (* hold v=0 with goal v=1 is the plain two-state form *)
  let ctmc1, _ = Explorer.explore ~hold:skip_b net ~goal:g1 in
  Alcotest.(check (float 1e-8)) "first phase" (1.0 -. exp (-.l1 *. t))
    (Transient.reach_probability ctmc1 ~horizon:t)

let test_until_lumping_preserves () =
  let net = load two_phase_model in
  let g2 = goal net "v = 2" in
  let skip_b = goal net "v = 0" in
  let ctmc, _ = Explorer.explore ~hold:skip_b net ~goal:g2 in
  let r = Lumping.lump ctmc in
  Alcotest.(check (float 1e-12)) "bad labels survive lumping"
    (Transient.reach_probability ctmc ~horizon:5.0)
    (Transient.reach_probability r.Lumping.quotient ~horizon:5.0)

(* --- qualitative invariant checking --- *)

let test_invariant_holds () =
  let net = load (Slimsim_models.Sensor_filter.source ~n:2) in
  (* exhaustion implies every sensor reads out of range *)
  let prop =
    goal net
      "(sensors.exhausted => (sensors.s1.value > 5 and sensors.s2.value > 5))"
  in
  match Slimsim_ctmc.Qualitative.check_invariant net ~prop with
  | Ok (Slimsim_ctmc.Qualitative.Holds { states }) ->
    Alcotest.(check bool) "explored some states" true (states > 10)
  | Ok (Slimsim_ctmc.Qualitative.Violated _) -> Alcotest.fail "invariant must hold"
  | Error e -> Alcotest.fail e

let test_invariant_violated_with_trace () =
  let net = load (Slimsim_models.Sensor_filter.source ~n:1) in
  let prop = goal net "not sensors.exhausted" in
  match Slimsim_ctmc.Qualitative.check_invariant net ~prop with
  | Ok (Slimsim_ctmc.Qualitative.Violated { trace; _ }) ->
    Alcotest.(check bool) "counterexample is non-empty" true (trace <> []);
    Alcotest.(check bool) "counterexample mentions the fault" true
      (List.exists (fun s -> Astring_contains.contains s "SensorFail") trace)
  | Ok (Slimsim_ctmc.Qualitative.Holds _) -> Alcotest.fail "expected a violation"
  | Error e -> Alcotest.fail e

let test_invariant_state_cap () =
  let net = load (Slimsim_models.Sensor_filter.source ~n:3) in
  let prop = goal net "true" in
  match Slimsim_ctmc.Qualitative.check_invariant ~max_states:5 net ~prop with
  | Error e -> Alcotest.(check bool) "cap reported" true (Astring_contains.contains e "exceeds")
  | Ok _ -> Alcotest.fail "expected the cap to trigger"

(* --- lumping --- *)

let test_lumping_symmetric_chain () =
  (* two parallel two-state components with identical rates are
     symmetric: lumping must shrink the product chain *)
  let net = load (Slimsim_models.Sensor_filter.source ~n:2) in
  let g = goal net (Slimsim_models.Sensor_filter.goal_all_failed ~n:2) in
  let ctmc, _ = Explorer.explore net ~goal:g in
  let r = Lumping.lump ctmc in
  Alcotest.(check bool) "reduction happened" true (r.Lumping.n_blocks < ctmc.Ctmc.n_states);
  List.iter
    (fun h ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "lumped probability preserved at %g" h)
        (Transient.reach_probability ctmc ~horizon:h)
        (Transient.reach_probability r.Lumping.quotient ~horizon:h))
    [ 100.0; 1800.0; 10000.0 ]

let test_lumping_respects_goal () =
  (* two structurally identical states with different labels must not
     be merged *)
  let c =
    Ctmc.make ~n_states:3 ~initial:[ (0, 1.0) ]
      ~transitions:[ (0, 1, 1.0); (0, 2, 1.0) ]
      ~goal:[| false; true; false |]
  in
  let r = Lumping.lump c in
  Alcotest.(check int) "goal split kept" 3 r.Lumping.n_blocks;
  Alcotest.(check bool) "goal states map to goal blocks" true
    r.Lumping.quotient.Ctmc.goal.(r.Lumping.block_of.(1))

let test_lumping_merges_parallel_twins () =
  (* two goal states with identical future behaviour collapse *)
  let c =
    Ctmc.make ~n_states:3 ~initial:[ (0, 1.0) ]
      ~transitions:[ (0, 1, 1.0); (0, 2, 1.0) ]
      ~goal:[| false; true; true |]
  in
  let r = Lumping.lump c in
  Alcotest.(check int) "twins merged" 2 r.Lumping.n_blocks;
  Alcotest.(check (float 1e-9)) "rates added into the block" 2.0
    (Ctmc.exit_rate r.Lumping.quotient r.Lumping.block_of.(0))

(* --- full pipeline vs closed form --- *)

let test_pipeline_sensor_filter () =
  List.iter
    (fun n ->
      let net = load (Slimsim_models.Sensor_filter.source ~n) in
      let g = goal net (Slimsim_models.Sensor_filter.goal_all_failed ~n) in
      let horizon = 1800.0 in
      match Analysis.check net ~goal:g ~horizon with
      | Ok r ->
        Alcotest.(check (float 1e-6))
          (Printf.sprintf "closed form at n=%d" n)
          (Slimsim_models.Sensor_filter.closed_form ~n ~horizon)
          r.Analysis.probability
      | Error e -> Alcotest.fail e)
    [ 1; 2; 3 ]

let test_pipeline_lump_ablation () =
  let net = load (Slimsim_models.Sensor_filter.source ~n:2) in
  let g = goal net (Slimsim_models.Sensor_filter.goal_all_failed ~n:2) in
  let with_lump = Analysis.check net ~goal:g ~horizon:1800.0 in
  let without = Analysis.check ~lump:false net ~goal:g ~horizon:1800.0 in
  match with_lump, without with
  | Ok a, Ok b ->
    Alcotest.(check (float 1e-9)) "same probability" a.Analysis.probability
      b.Analysis.probability;
    Alcotest.(check bool) "lumping shrinks" true
      (a.Analysis.lumped_states < b.Analysis.lumped_states)
  | _ -> Alcotest.fail "pipeline failed"

let suite =
  [
    Alcotest.test_case "ctmc construction" `Quick test_ctmc_make;
    Alcotest.test_case "uniformized rows" `Quick test_uniformized_rows;
    Alcotest.test_case "two-state closed form" `Quick test_two_state_exponential;
    Alcotest.test_case "erlang chain closed form" `Quick test_erlang_chain;
    Alcotest.test_case "goal made absorbing" `Quick test_goal_absorbing;
    Alcotest.test_case "initial goal mass" `Quick test_initial_goal_mass;
    Alcotest.test_case "poisson weights" `Quick test_poisson_weights;
    Alcotest.test_case "explorer two states" `Quick test_explorer_two_state;
    Alcotest.test_case "vanishing elimination" `Quick test_explorer_immediate_elimination;
    Alcotest.test_case "timed models rejected" `Quick test_explorer_rejects_timed;
    Alcotest.test_case "immediate cycle detected" `Quick test_explorer_immediate_cycle;
    Alcotest.test_case "state cap" `Quick test_explorer_state_cap;
    Alcotest.test_case "invariant holds" `Quick test_invariant_holds;
    Alcotest.test_case "invariant violated" `Quick test_invariant_violated_with_trace;
    Alcotest.test_case "invariant state cap" `Quick test_invariant_state_cap;
    Alcotest.test_case "until pipeline" `Quick test_until_pipeline;
    Alcotest.test_case "until survives lumping" `Quick test_until_lumping_preserves;
    Alcotest.test_case "lumping symmetric chain" `Quick test_lumping_symmetric_chain;
    Alcotest.test_case "lumping respects goal" `Quick test_lumping_respects_goal;
    Alcotest.test_case "lumping merges twins" `Quick test_lumping_merges_parallel_twins;
    Alcotest.test_case "pipeline vs closed form" `Quick test_pipeline_sensor_filter;
    Alcotest.test_case "lump ablation" `Quick test_pipeline_lump_ablation;
  ]
