(* Feature tests: error propagation (auto-connection between related
   error models, §II-D), dynamic reconfiguration ([in modes] activation
   with resume/restart), and the M/M/1/K queueing model as a further
   simulator-vs-CTMC cross-validation. *)

module Loader = Slimsim_slim.Loader
module Path = Slimsim_sim.Path
module Strategy = Slimsim_sim.Strategy
module Engine = Slimsim_sim.Engine
module Generator = Slimsim_stats.Generator
module Rng = Slimsim_stats.Rng
module Analysis = Slimsim_ctmc.Analysis

let load src =
  match Loader.load_string src with
  | Ok l -> l.Loader.network
  | Error e -> Alcotest.failf "load failed: %s" e

let goal net src =
  match Loader.parse_goal net src with
  | Ok g -> g
  | Error e -> Alcotest.failf "goal failed: %s" e

(* --- error propagation --- *)

let propagation_model =
  {|
device D
features
  sig_ok: out data port bool := true;
end D;
device implementation D.I
modes
  run: initial mode;
end D.I;

error model Src
states
  ok: initial state;
  failed: state;
events
  e: occurrence poisson 0.5;
propagations
  alarm: out propagation;
transitions
  ok -[e]-> failed;
  failed -[alarm]-> failed;
end Src;

error model Dst
states
  ok: initial state;
  poisoned: state;
propagations
  alarm: in propagation;
transitions
  ok -[alarm]-> poisoned;
end Dst;

system Main
end Main;
system implementation Main.Imp
subcomponents
  a: device D.I;
  b: device D.I;
end Main.Imp;

extend a with Src
injections
  inject failed: sig_ok := false;
end extend;

extend b with Dst
injections
  inject poisoned: sig_ok := false;
end extend;

root Main.Imp;
|}

let test_propagation_between_siblings () =
  let net = load propagation_model in
  let g = goal net "b in mode poisoned" in
  (* the propagation fires as soon as the source fails: P = 1 - e^{-0.5 t} *)
  let horizon = 3.0 in
  let generator = Generator.create Generator.Chernoff ~delta:0.05 ~eps:0.02 in
  (match Engine.run net ~goal:g ~horizon ~strategy:Strategy.Asap ~generator () with
  | Ok r ->
    let expected = 1.0 -. exp (-0.5 *. horizon) in
    Alcotest.(check bool) "simulator matches the source's law" true
      (Float.abs (r.Engine.probability -. expected) < 0.02)
  | Error e -> Alcotest.fail (Path.error_to_string e));
  (* and the CTMC pipeline agrees exactly *)
  match Analysis.check net ~goal:g ~horizon with
  | Ok r ->
    Alcotest.(check (float 1e-8)) "exact pipeline"
      (1.0 -. exp (-0.5 *. horizon))
      r.Analysis.probability
  | Error e -> Alcotest.fail e

let test_propagation_without_source_is_dead () =
  (* an in propagation with no related out propagation can never fire *)
  let src =
    {|
device D
features
  sig_ok: out data port bool := true;
end D;
device implementation D.I
modes
  run: initial mode;
end D.I;

error model Dst
states
  ok: initial state;
  poisoned: state;
propagations
  alarm: in propagation;
transitions
  ok -[alarm]-> poisoned;
end Dst;

system Main
end Main;
system implementation Main.Imp
subcomponents
  b: device D.I;
end Main.Imp;

extend b with Dst
end extend;

root Main.Imp;
|}
  in
  let net = load src in
  let g = goal net "b in mode poisoned" in
  let cfg = Path.default_config ~horizon:100.0 in
  match fst (Path.generate net cfg Strategy.Asap (Rng.for_path ~seed:1L ~path:0) ~goal:g) with
  | Ok (Path.Unsat_deadlock | Path.Unsat_horizon) -> ()
  | v ->
    Alcotest.failf "expected the propagation to be dead, got %s"
      (match v with Ok v -> Path.verdict_to_string v | Error e -> Path.error_to_string e)

(* --- dynamic reconfiguration --- *)

(* The worker is active only in the parent's 'on' mode; its clock must
   freeze while the parent is 'off'. *)
let reconfig_model ~restart =
  Printf.sprintf
    {|
device Worker
features
  done_flag: out data port bool := false;
end Worker;
device implementation Worker.I
subcomponents
  w: data clock;
modes
  busy: initial mode;
  finished: mode;
transitions
  busy -[when w >= 4.0 then done_flag := true]-> finished;
end Worker.I;

system Main
end Main;
system implementation Main.Imp
subcomponents
  worker: device Worker.I in modes (on)%s;
  t: data clock;
modes
  on: initial mode while t <= 2.0;
  off: mode while t <= 5.0;
  on2: mode;
transitions
  on -[when t >= 2.0]-> off;
  off -[when t >= 5.0]-> on2;
end Main.Imp;

root Main.Imp;
|}
    (if restart then " restart" else "")

let run_to_sat net g =
  let cfg = Path.default_config ~horizon:100.0 in
  fst (Path.generate net cfg Strategy.Asap (Rng.for_path ~seed:1L ~path:0) ~goal:g)

let test_reconfiguration_freezes_clock () =
  (* resume semantics: worker runs 0..2 (w reaches 2), freezes 2..5,
     resumes at 5 — wait: 'on2' is not in its activation list, so the
     worker stays frozen and never finishes *)
  let net = load (reconfig_model ~restart:false) in
  let g = goal net "worker.done_flag" in
  match run_to_sat net g with
  | Ok (Path.Unsat_horizon | Path.Unsat_deadlock) -> ()
  | v ->
    Alcotest.failf "worker only active in 'on': expected unsat, got %s"
      (match v with Ok v -> Path.verdict_to_string v | Error e -> Path.error_to_string e)

let test_reconfiguration_activation_windows () =
  (* with the worker active in both 'on' and 'on2' (resume), its clock
     shows 2 when reactivated at t=5 and reaches 4 at t=7 *)
  let src =
    Str.global_replace (Str.regexp_string "in modes (on)") "in modes (on, on2)"
      (reconfig_model ~restart:false)
  in
  let net = load src in
  let g = goal net "worker.done_flag" in
  match run_to_sat net g with
  | Ok (Path.Sat t) ->
    Alcotest.(check (float 1e-6)) "resumes with frozen clock" 7.0 t
  | v ->
    Alcotest.failf "expected sat at 7, got %s"
      (match v with Ok v -> Path.verdict_to_string v | Error e -> Path.error_to_string e)

let test_reconfiguration_restart () =
  (* with restart, reactivation at t=5 resets w to 0: done at t=9 *)
  let src =
    Str.global_replace
      (Str.regexp_string "in modes (on) restart")
      "in modes (on, on2) restart"
      (reconfig_model ~restart:true)
  in
  let net = load src in
  let g = goal net "worker.done_flag" in
  match run_to_sat net g with
  | Ok (Path.Sat t) ->
    Alcotest.(check (float 1e-6)) "restart resets the clock" 9.0 t
  | v ->
    Alcotest.failf "expected sat at 9, got %s"
      (match v with Ok v -> Path.verdict_to_string v | Error e -> Path.error_to_string e)

(* --- M/M/1/K queue as a cross-validation substrate --- *)

let test_mm1k_sim_vs_exact () =
  let lambda = 0.8 and mu = 1.0 and k = 4 in
  let src = Slimsim_models.Queue_model.source ~arrival:lambda ~service:mu ~capacity:k in
  let net = load src in
  let g = goal net (Slimsim_models.Queue_model.goal_full ~capacity:k) in
  let horizon = 10.0 in
  let exact =
    match Analysis.check net ~goal:g ~horizon with
    | Ok r -> r.Analysis.probability
    | Error e -> Alcotest.fail e
  in
  let generator = Generator.create Generator.Chernoff ~delta:0.05 ~eps:0.02 in
  match Engine.run net ~goal:g ~horizon ~strategy:Strategy.Asap ~generator () with
  | Ok r ->
    Alcotest.(check bool)
      (Printf.sprintf "sim (%.4f) within eps of exact (%.4f)" r.Engine.probability exact)
      true
      (Float.abs (r.Engine.probability -. exact) <= 0.02)
  | Error e -> Alcotest.fail (Path.error_to_string e)

let test_mm1k_until () =
  (* P(queue stays below full U [0,T] the server drains it to empty
     after at least one arrival) on both engines *)
  let src = Slimsim_models.Queue_model.source ~arrival:0.5 ~service:1.5 ~capacity:3 in
  let net = load src in
  let g = goal net "served >= 2" in
  let h = goal net "q <= 2" in
  let horizon = 6.0 in
  let exact =
    match Analysis.check ~hold:h net ~goal:g ~horizon with
    | Ok r -> r.Analysis.probability
    | Error e -> Alcotest.fail e
  in
  let generator = Generator.create Generator.Chernoff ~delta:0.05 ~eps:0.02 in
  match
    Engine.run ~hold:h net ~goal:g ~horizon ~strategy:Strategy.Asap ~generator ()
  with
  | Ok r ->
    Alcotest.(check bool)
      (Printf.sprintf "until: sim (%.4f) vs exact (%.4f)" r.Engine.probability exact)
      true
      (Float.abs (r.Engine.probability -. exact) <= 0.02)
  | Error e -> Alcotest.fail (Path.error_to_string e)

(* --- the timed sensor/filter variant (simulator only) --- *)

let test_timed_sensor_filter () =
  let src = Slimsim_models.Sensor_filter.timed_source ~n:2 in
  let net = load src in
  let g = goal net Slimsim_models.Sensor_filter.goal_exhausted in
  (* the exact chain rejects the timed model, as §IV explains *)
  (match Analysis.check net ~goal:g ~horizon:1800.0 with
  | Error e ->
    Alcotest.(check bool) "rejected as timed" true
      (Astring_contains.contains e "not untimed")
  | Ok _ -> Alcotest.fail "the exact chain must reject timed models");
  (* ASAP detects at the earliest instant: the probability approaches the
     untimed closed form *)
  let generator = Generator.create Generator.Chernoff ~delta:0.1 ~eps:0.03 in
  match Engine.run net ~goal:g ~horizon:1800.0 ~strategy:Strategy.Asap ~generator () with
  | Error e -> Alcotest.fail (Path.error_to_string e)
  | Ok asap ->
    let truth = Slimsim_models.Sensor_filter.closed_form ~n:2 ~horizon:1800.0 in
    Alcotest.(check bool) "asap near the untimed value" true
      (Float.abs (asap.Engine.probability -. truth) < 0.04);
    (* progressive pays the detection latency: clearly lower *)
    let generator = Generator.create Generator.Chernoff ~delta:0.1 ~eps:0.03 in
    (match
       Engine.run net ~goal:g ~horizon:1800.0 ~strategy:Strategy.Progressive
         ~generator ()
     with
    | Error e -> Alcotest.fail (Path.error_to_string e)
    | Ok prog ->
      Alcotest.(check bool) "progressive clearly below asap" true
        (prog.Engine.probability < asap.Engine.probability -. 0.1))

let suite =
  [
    Alcotest.test_case "propagation between siblings" `Slow
      test_propagation_between_siblings;
    Alcotest.test_case "sourceless propagation is dead" `Quick
      test_propagation_without_source_is_dead;
    Alcotest.test_case "reconfiguration freezes clocks" `Quick
      test_reconfiguration_freezes_clock;
    Alcotest.test_case "reconfiguration resume" `Quick
      test_reconfiguration_activation_windows;
    Alcotest.test_case "reconfiguration restart" `Quick test_reconfiguration_restart;
    Alcotest.test_case "timed sensor/filter variant" `Slow test_timed_sensor_filter;
    Alcotest.test_case "mm1k: sim vs exact" `Slow test_mm1k_sim_vs_exact;
    Alcotest.test_case "mm1k: until on both engines" `Slow test_mm1k_until;
  ]
