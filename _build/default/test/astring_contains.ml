(* Tiny substring helper for error-message assertions. *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  if nn = 0 then true
  else
    let rec go i =
      if i + nn > nh then false
      else if String.sub haystack i nn = needle then true
      else go (i + 1)
    in
    go 0
