(* End-to-end tests mirroring the paper's experiments in miniature:
   simulator vs CTMC pipeline vs closed form on the §IV benchmark, and
   the strategy (in)sensitivity claims of Figure 5 on the launcher. *)

module Sf = Slimsim_models.Sensor_filter
module Launcher = Slimsim_models.Launcher

let load src =
  match Slimsim.load_string src with
  | Ok m -> m
  | Error e -> Alcotest.failf "load failed: %s" e

let check_ok = function Ok v -> v | Error e -> Alcotest.failf "failed: %s" e

let test_sensor_filter_three_ways () =
  List.iter
    (fun n ->
      let model = load (Sf.source ~n) in
      let horizon = 1800.0 in
      let property =
        Printf.sprintf "P(<> [0, %g] %s)" horizon (Sf.goal_all_failed ~n)
      in
      let truth = Sf.closed_form ~n ~horizon in
      let exact = check_ok (Slimsim.check_exact model ~property) in
      Alcotest.(check (float 1e-6))
        (Printf.sprintf "ctmc = closed form (n=%d)" n)
        truth exact.Slimsim.exact_probability;
      let eps = 0.02 in
      let sim =
        check_ok
          (Slimsim.check model ~property ~strategy:Slimsim.Strategy.Asap
             ~delta:0.05 ~eps ())
      in
      Alcotest.(check bool)
        (Printf.sprintf "simulator within eps of truth (n=%d)" n)
        true
        (Float.abs (sim.Slimsim.probability -. truth) <= eps))
    [ 1; 2 ]

let test_sensor_filter_strategy_independent_goal () =
  (* the value-based failure condition is purely fault-driven, so every
     strategy estimates the same probability *)
  let n = 2 in
  let model = load (Sf.source ~n) in
  let property = Printf.sprintf "P(<> [0, 1800] %s)" (Sf.goal_all_failed ~n) in
  let truth = Sf.closed_form ~n ~horizon:1800.0 in
  List.iter
    (fun strategy ->
      let r =
        check_ok (Slimsim.check model ~property ~strategy ~delta:0.05 ~eps:0.03 ())
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s within eps" (Slimsim.Strategy.to_string strategy))
        true
        (Float.abs (r.Slimsim.probability -. truth) <= 0.03))
    Slimsim.Strategy.all_automated

let test_gps_full_model () =
  let model = load Slimsim_models.Gps.source in
  let property =
    Printf.sprintf "P(<> [0, 300] %s)" Slimsim_models.Gps.goal_no_fix
  in
  (* a fault of any kind occurs with rate 0.015/s; almost every path
     shows one within 300 s and most become visible *)
  let r =
    check_ok
      (Slimsim.check model ~property ~strategy:Slimsim.Strategy.Asap ~delta:0.05
         ~eps:0.02 ())
  in
  Alcotest.(check bool) "fault visible with high probability" true
    (r.Slimsim.probability > 0.9 && r.Slimsim.probability <= 1.0);
  Alcotest.(check int) "no deadlocks in the gps model" 0 r.Slimsim.deadlock_paths

let test_launcher_permanent_strategy_insensitive () =
  (* Figure 5, left: with permanent faults the model is probabilistic/
     deterministic only, so the strategies agree (up to 2 eps) *)
  let model = load (Launcher.source ~variant:`Permanent) in
  let property = Printf.sprintf "P(<> [0, 60] %s)" Launcher.goal_failure in
  let eps = 0.04 in
  let estimates =
    List.map
      (fun strategy ->
        (check_ok (Slimsim.check model ~property ~strategy ~delta:0.1 ~eps ())).Slimsim.probability)
      Slimsim.Strategy.all_automated
  in
  let lo = List.fold_left Float.min 1.0 estimates
  and hi = List.fold_left Float.max 0.0 estimates in
  Alcotest.(check bool) "all strategies agree" true (hi -. lo <= 2.0 *. eps)

let test_launcher_recoverable_strategy_sensitive () =
  (* Figure 5, right: ASAP restarts before the cooldown and performs
     distinctly worse than Progressive *)
  let model = load (Launcher.source ~variant:`Recoverable) in
  let property = Printf.sprintf "P(<> [0, 100] %s)" Launcher.goal_failure in
  let eps = 0.04 in
  let p strategy =
    (check_ok (Slimsim.check model ~property ~strategy ~delta:0.1 ~eps ())).Slimsim.probability
  in
  let asap = p Slimsim.Strategy.Asap in
  let progressive = p Slimsim.Strategy.Progressive in
  Alcotest.(check bool)
    (Printf.sprintf "asap (%.3f) clearly above progressive (%.3f)" asap progressive)
    true
    (asap > progressive +. (2.0 *. eps))

let test_until_sim_vs_exact () =
  (* the simulator and the CTMC pipeline agree on a bounded until *)
  let model = load {|
device D
features
  v: out data port int := 0;
end D;
device implementation D.I
modes
  a: initial mode;
  b: mode;
  c: mode;
transitions
  a -[rate 0.1 then v := 1]-> b;
  b -[rate 0.2 then v := 2]-> c;
end D.I;
root D.I;
|} in
  let property = "P(v <= 1 U [0, 8] v = 2)" in
  let exact = check_ok (Slimsim.check_exact model ~property) in
  let eps = 0.02 in
  let sim =
    check_ok
      (Slimsim.check model ~property ~strategy:Slimsim.Strategy.Asap ~delta:0.05
         ~eps ())
  in
  Alcotest.(check bool) "until agreement" true
    (Float.abs (sim.Slimsim.probability -. exact.Slimsim.exact_probability) <= eps);
  (* a blocked until is zero on both engines *)
  let blocked = "P(v = 0 U [0, 8] v = 2)" in
  let e0 = check_ok (Slimsim.check_exact model ~property:blocked) in
  Alcotest.(check (float 1e-12)) "exact blocked" 0.0 e0.Slimsim.exact_probability;
  let s0 =
    check_ok
      (Slimsim.check model ~property:blocked ~strategy:Slimsim.Strategy.Asap
         ~delta:0.1 ~eps:0.1 ())
  in
  Alcotest.(check (float 1e-12)) "sim blocked" 0.0 s0.Slimsim.probability

let test_invariance_complement () =
  (* P([] [0,u] safe) = 1 - P(<> [0,u] not safe), on both engines *)
  let model = load {|
device D
features
  v: out data port bool := false;
end D;
device implementation D.I
modes
  a: initial mode;
  b: mode;
transitions
  a -[rate 0.3 then v := true]-> b;
end D.I;
root D.I;
|} in
  let u = 4.0 in
  let expected = exp (-0.3 *. u) in
  let inv = Printf.sprintf "P([] [0, %g] not v)" u in
  let exact = check_ok (Slimsim.check_exact model ~property:inv) in
  Alcotest.(check (float 1e-8)) "exact invariance" expected
    exact.Slimsim.exact_probability;
  let sim =
    check_ok
      (Slimsim.check model ~property:inv ~strategy:Slimsim.Strategy.Asap
         ~delta:0.05 ~eps:0.02 ())
  in
  Alcotest.(check bool) "sim invariance" true
    (Float.abs (sim.Slimsim.probability -. expected) <= 0.02);
  Alcotest.(check bool) "interval stays ordered" true
    (sim.Slimsim.ci_low <= sim.Slimsim.probability
    && sim.Slimsim.probability <= sim.Slimsim.ci_high);
  (* the pattern-style phrasing agrees *)
  let pat =
    check_ok
      (Slimsim.check_exact model
         ~property:(Printf.sprintf "probability that not v throughout %g" u))
  in
  Alcotest.(check (float 1e-12)) "throughout phrasing" exact.Slimsim.exact_probability
    pat.Slimsim.exact_probability

let test_property_syntax_equivalence () =
  let model = load (Sf.source ~n:1) in
  let csl = "P(<> [0, 1800] sensors.exhausted or filters.exhausted)" in
  let pat = "probability that sensors.exhausted or filters.exhausted within 1800" in
  let r1 = check_ok (Slimsim.check_exact model ~property:csl) in
  let r2 = check_ok (Slimsim.check_exact model ~property:pat) in
  Alcotest.(check (float 1e-12)) "both syntaxes agree" r1.Slimsim.exact_probability
    r2.Slimsim.exact_probability

let test_mode_goal_matches_value_goal () =
  (* bank exhaustion (mode-based) and all-units-failed (value-based)
     coincide on stable states, so the exact analyses agree *)
  let n = 2 in
  let model = load (Sf.source ~n) in
  let p1 =
    check_ok
      (Slimsim.check_exact model
         ~property:(Printf.sprintf "P(<> [0, 1800] %s)" Sf.goal_exhausted))
  in
  let p2 =
    check_ok
      (Slimsim.check_exact model
         ~property:(Printf.sprintf "P(<> [0, 1800] %s)" (Sf.goal_all_failed ~n)))
  in
  Alcotest.(check (float 1e-9)) "goals agree" p1.Slimsim.exact_probability
    p2.Slimsim.exact_probability

let test_simulate_one_records_steps () =
  let model = load Slimsim_models.Gps.source in
  let property = "P(<> [0, 100] gps in mode active)" in
  match
    Slimsim.simulate_one model ~property ~strategy:Slimsim.Strategy.Asap ~seed:2L
  with
  | Ok (Slimsim_sim.Path.Sat _, steps) ->
    Alcotest.(check bool) "steps recorded" true (steps <> [])
  | Ok (v, _) -> Alcotest.failf "unexpected %s" (Slimsim_sim.Path.verdict_to_string v)
  | Error e -> Alcotest.fail e

let test_load_errors_are_reported () =
  Alcotest.(check bool) "parse error surfaces" true
    (Result.is_error (Slimsim.load_string "not a model"));
  Alcotest.(check bool) "sema error surfaces" true
    (Result.is_error (Slimsim.load_string "system S\nend S;\nroot S.I;"));
  let model = load (Sf.source ~n:1) in
  Alcotest.(check bool) "property error surfaces" true
    (Result.is_error (Slimsim.check_exact model ~property:"P(nonsense)"))

let suite =
  [
    Alcotest.test_case "sensor-filter: sim vs ctmc vs closed form" `Slow
      test_sensor_filter_three_ways;
    Alcotest.test_case "sensor-filter: strategy independence" `Slow
      test_sensor_filter_strategy_independent_goal;
    Alcotest.test_case "gps full model" `Slow test_gps_full_model;
    Alcotest.test_case "launcher: permanent insensitive (fig5 left)" `Slow
      test_launcher_permanent_strategy_insensitive;
    Alcotest.test_case "launcher: recoverable sensitive (fig5 right)" `Slow
      test_launcher_recoverable_strategy_sensitive;
    Alcotest.test_case "until: sim vs exact" `Slow test_until_sim_vs_exact;
    Alcotest.test_case "invariance complement" `Slow test_invariance_complement;
    Alcotest.test_case "property syntax equivalence" `Quick
      test_property_syntax_equivalence;
    Alcotest.test_case "mode goal = value goal" `Quick test_mode_goal_matches_value_goal;
    Alcotest.test_case "single path recording" `Quick test_simulate_one_records_steps;
    Alcotest.test_case "errors are reported" `Quick test_load_errors_are_reported;
  ]
