(* Tests for the SLIM frontend: lexer, parser, pretty-printer round
   trips, semantic analysis, instantiation and translation. *)

open Slimsim_slim

(* --- lexer --- *)

let toks src = List.map (fun t -> t.Token.tok) (Lexer.tokenize src)

let test_lexer_basics () =
  Alcotest.(check bool) "keywords lowercase" true
    (toks "SYSTEM System system" = [ Token.KW "system"; Token.KW "system"; Token.KW "system"; Token.EOF ]);
  Alcotest.(check bool) "ident vs keyword" true
    (toks "systems" = [ Token.IDENT "systems"; Token.EOF ]);
  Alcotest.(check bool) "numbers" true
    (toks "42 4.5 1e3 2.5e-2" = [ Token.INT 42; Token.FLOAT 4.5; Token.FLOAT 1000.0; Token.FLOAT 0.025; Token.EOF ]);
  Alcotest.(check bool) "dotdot not eaten by float" true
    (toks "0.2 .. 0.3" = [ Token.FLOAT 0.2; Token.DOTDOT; Token.FLOAT 0.3; Token.EOF ]);
  Alcotest.(check bool) "int dotdot int" true
    (toks "2..3" = [ Token.INT 2; Token.DOTDOT; Token.INT 3; Token.EOF ]);
  Alcotest.(check bool) "operators" true
    (toks ":= -> <= >= != => = < >" =
       [ Token.ASSIGN; Token.ARROW; Token.LE; Token.GE; Token.NEQ; Token.IMPLIES; Token.EQ; Token.LT; Token.GT; Token.EOF ])

let test_lexer_comments () =
  Alcotest.(check bool) "comment to eol" true
    (toks "a -- this is a comment\nb" = [ Token.IDENT "a"; Token.IDENT "b"; Token.EOF ]);
  Alcotest.(check bool) "minus vs comment" true
    (toks "a - b" = [ Token.IDENT "a"; Token.MINUS; Token.IDENT "b"; Token.EOF ]);
  Alcotest.(check bool) "transition brackets" true
    (toks "-[x]->" = [ Token.MINUS; Token.LBRACKET; Token.IDENT "x"; Token.RBRACKET; Token.ARROW; Token.EOF ])

let test_lexer_errors () =
  match Lexer.tokenize "a $ b" with
  | exception Lexer.Lex_error (_, 1, _) -> ()
  | _ -> Alcotest.fail "expected a lex error"

(* --- expression parser --- *)

let parse_expr s =
  match Parser.parse_expression s with Ok e -> e | Error e -> Alcotest.fail e

let test_parser_precedence () =
  let open Ast in
  Alcotest.(check bool) "mul binds tighter" true
    (parse_expr "1 + 2 * 3" = E_binop (B_add, E_int 1, E_binop (B_mul, E_int 2, E_int 3)));
  Alcotest.(check bool) "and binds tighter than or" true
    (parse_expr "a or b and c"
    = E_binop (B_or, E_path [ "a" ], E_binop (B_and, E_path [ "b" ], E_path [ "c" ])));
  Alcotest.(check bool) "comparison below and" true
    (parse_expr "x < 1 and y > 2"
    = E_binop
        ( B_and,
          E_binop (B_lt, E_path [ "x" ], E_int 1),
          E_binop (B_gt, E_path [ "y" ], E_int 2) ));
  Alcotest.(check bool) "implies right assoc" true
    (parse_expr "a => b => c"
    = E_binop (B_implies, E_path [ "a" ], E_binop (B_implies, E_path [ "b" ], E_path [ "c" ])));
  Alcotest.(check bool) "unary minus" true
    (parse_expr "-x + 1" = E_binop (B_add, E_unop (U_neg, E_path [ "x" ]), E_int 1));
  Alcotest.(check bool) "not binds below comparison" true
    (parse_expr "not x = 1" = E_unop (U_not, E_binop (B_eq, E_path [ "x" ], E_int 1)));
  Alcotest.(check bool) "parens" true
    (parse_expr "(1 + 2) * 3" = E_binop (B_mul, E_binop (B_add, E_int 1, E_int 2), E_int 3));
  Alcotest.(check bool) "dotted path" true (parse_expr "a.b.c" = E_path [ "a"; "b"; "c" ]);
  Alcotest.(check bool) "min function" true
    (parse_expr "min(x, 2)" = E_binop (B_min, E_path [ "x" ], E_int 2))

let test_parser_mode_atoms () =
  (match Parser.parse_expression ~allow_mode_atoms:true "gps in mode active" with
  | Ok (Ast.E_in_mode ([ "gps" ], "active")) -> ()
  | Ok _ -> Alcotest.fail "wrong parse"
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "mode atoms off by default" true
    (Result.is_error (Parser.parse_expression "gps in mode active"))

let test_parser_errors () =
  List.iter
    (fun src ->
      Alcotest.(check bool) (Printf.sprintf "reject %S" src) true
        (Result.is_error (Parser.parse_expression src)))
    [ "1 +"; "(1"; "min(1)"; ""; "x in mode" ]

(* --- model parsing --- *)

let parse_model s =
  match Parser.parse_model s with Ok m -> m | Error e -> Alcotest.fail e

let test_parse_gps_model () =
  let m = parse_model Slimsim_models.Gps.source in
  Alcotest.(check bool) "root" true (m.Ast.root = ("Main", "Imp"));
  let types =
    List.filter_map (function Ast.D_comp_type ct -> Some ct.Ast.ct_name | _ -> None) m.Ast.declarations
  in
  Alcotest.(check (list string)) "component types" [ "GPS"; "Main" ] types;
  let ems =
    List.filter_map (function Ast.D_error_model em -> Some em.Ast.em_name | _ -> None) m.Ast.declarations
  in
  Alcotest.(check (list string)) "error models" [ "GPSFail" ] ems;
  let exts = List.filter_map (function Ast.D_extension e -> Some e | _ -> None) m.Ast.declarations in
  Alcotest.(check int) "one extension" 1 (List.length exts);
  Alcotest.(check int) "three injections" 3
    (List.length (List.hd exts).Ast.ex_injections)

let test_parse_transition_forms () =
  let src =
    {|
device D
features
  go: in event port;
  v: out data port int := 0;
end D;

device implementation D.I
subcomponents
  c: data clock;
modes
  a: initial mode while c <= 10.0;
  b: mode;
transitions
  a -[go when c >= 2.0 then v := v + 1]-> b;
  a -[rate 0.5]-> b;
  b -[when c >= 1.0]-> a;
  b -[then v := 0]-> a;
  b -[]-> a;
end D.I;

root D.I;
|}
  in
  let m = parse_model src in
  let ci =
    List.find_map (function Ast.D_comp_impl ci -> Some ci | _ -> None) m.Ast.declarations
    |> Option.get
  in
  Alcotest.(check int) "five transitions" 5 (List.length ci.Ast.ci_transitions);
  match ci.Ast.ci_transitions with
  | [ t1; t2; t3; t4; t5 ] ->
    Alcotest.(check bool) "event trigger" true (t1.Ast.t_trigger = Ast.Trig_event [ "go" ]);
    Alcotest.(check bool) "guard present" true (t1.Ast.t_guard <> None);
    Alcotest.(check int) "one effect" 1 (List.length t1.Ast.t_effects);
    Alcotest.(check bool) "rate trigger" true (t2.Ast.t_trigger = Ast.Trig_rate 0.5);
    Alcotest.(check bool) "bare guard" true (t3.Ast.t_trigger = Ast.Trig_none && t3.Ast.t_guard <> None);
    Alcotest.(check bool) "bare effect" true (t4.Ast.t_guard = None && t4.Ast.t_effects <> []);
    Alcotest.(check bool) "empty label" true
      (t5.Ast.t_trigger = Ast.Trig_none && t5.Ast.t_guard = None && t5.Ast.t_effects = [])
  | _ -> Alcotest.fail "expected five transitions"

let test_parse_rejects () =
  List.iter
    (fun (what, src) ->
      Alcotest.(check bool) what true (Result.is_error (Parser.parse_model src)))
    [
      ("missing root", "system S\nend S;");
      ("mismatched end", "system S\nend T;\nroot S.I;");
      ("duplicate root", "system S\nend S;\nroot S.I;\nroot S.I;");
      ("bad section", "system implementation S.I\nbananas\nend S.I;\nroot S.I;");
    ]

(* --- pretty-printer round trip --- *)

let test_roundtrip_gps () =
  let m1 = parse_model Slimsim_models.Gps.source in
  let printed = Pretty.model_to_string m1 in
  let m2 = parse_model printed in
  Alcotest.(check bool) "ast fixpoint under print+parse" true
    (Ast.strip_positions m1 = Ast.strip_positions m2)

let test_roundtrip_generated () =
  List.iter
    (fun src ->
      let m1 = parse_model src in
      let m2 = parse_model (Pretty.model_to_string m1) in
      Alcotest.(check bool) "roundtrip" true
        (Ast.strip_positions m1 = Ast.strip_positions m2))
    [
      Slimsim_models.Sensor_filter.source ~n:3;
      Slimsim_models.Launcher.source ~variant:`Permanent;
      Slimsim_models.Launcher.source ~variant:`Recoverable;
    ]

(* qcheck: expression print/parse round trip *)
let gen_expr =
  QCheck2.Gen.(
    sized @@ fix (fun self n ->
        let leaf =
          oneof
            [
              map (fun b -> Ast.E_bool b) bool;
              map (fun i -> Ast.E_int i) (int_range 0 1000);
              map (fun x -> Ast.E_real (float_of_int x /. 8.0)) (int_range 0 800);
              map (fun s -> Ast.E_path [ s ]) (oneofl [ "x"; "y"; "foo"; "a1" ]);
              map2 (fun s t -> Ast.E_path [ s; t ]) (oneofl [ "a"; "b" ]) (oneofl [ "p"; "q" ]);
            ]
        in
        if n <= 0 then leaf
        else
          oneof
            [
              leaf;
              map (fun e -> Ast.E_unop (Ast.U_not, e)) (self (n / 2));
              map (fun e -> Ast.E_unop (Ast.U_neg, e)) (self (n / 2));
              map2
                (fun (op, e1) e2 -> Ast.E_binop (op, e1, e2))
                (pair
                   (oneofl
                      Ast.[ B_add; B_sub; B_mul; B_div; B_and; B_or; B_implies; B_eq; B_neq; B_lt; B_le; B_gt; B_ge; B_min; B_max ])
                   (self (n / 2)))
                (self (n / 2));
            ]))

let qcheck_expr_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:500 ~name:"expression print/parse roundtrip"
       ~print:(fun e ->
         Pretty.expr_to_string e
         ^ "\n(reparsed: "
         ^ (match Parser.parse_expression (Pretty.expr_to_string e) with
           | Ok e2 -> Pretty.expr_to_string e2
           | Error err -> "ERR " ^ err)
         ^ ")")
       gen_expr
       (fun e ->
         let printed = Pretty.expr_to_string e in
         match Parser.parse_expression printed with
         | Ok e' -> e = e'
         | Error _ -> false))

(* --- sema --- *)

let analyze src =
  match Parser.parse_model src with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok m -> Sema.analyze m

let expect_sema_error what fragment src =
  match analyze src with
  | Ok _ -> Alcotest.failf "%s: expected a semantic error" what
  | Error errs ->
    let all = Sema.errors_to_string errs in
    if
      not
        (Astring_contains.contains all fragment)
    then
      Alcotest.failf "%s: expected message containing %S, got:\n%s" what fragment all

let test_sema_accepts_models () =
  List.iter
    (fun src ->
      match analyze src with
      | Ok _ -> ()
      | Error errs -> Alcotest.failf "unexpected errors: %s" (Sema.errors_to_string errs))
    [
      Slimsim_models.Gps.source;
      Slimsim_models.Gps.nominal_only;
      Slimsim_models.Sensor_filter.source ~n:2;
      Slimsim_models.Launcher.source ~variant:`Permanent;
      Slimsim_models.Launcher.source ~variant:`Recoverable;
    ]

let wrap_impl body =
  Printf.sprintf
    {|
system S
features
  v: out data port int := 0;
  e: in event port;
end S;

system implementation S.I
%s
end S.I;

root S.I;
|}
    body

let test_sema_rejections () =
  expect_sema_error "unknown root" "is not declared" "system S\nend S;\nroot T.I;";
  expect_sema_error "recursive containment" "recursive"
    {|
system S
end S;
system implementation S.I
subcomponents
  child: system S.I;
end S.I;
root S.I;
|};
  expect_sema_error "two initial modes" "exactly one initial"
    (wrap_impl "modes\n  a: initial mode;\n  b: initial mode;");
  expect_sema_error "unknown mode in transition" "unknown mode"
    (wrap_impl "modes\n  a: initial mode;\ntransitions\n  a -[]-> zz;");
  expect_sema_error "guard type" "must be Boolean"
    (wrap_impl "modes\n  a: initial mode;\ntransitions\n  a -[when v + 1]-> a;");
  expect_sema_error "assign to input port" "input data port"
    {|
system S
features
  i: in data port int := 0;
end S;
system implementation S.I
modes
  a: initial mode;
transitions
  a -[then i := 3]-> a;
end S.I;
root S.I;
|};
  expect_sema_error "rate and internal guard mix" "mixes rate transitions"
    (wrap_impl
       "subcomponents\n  c: data clock;\nmodes\n  a: initial mode;\n  b: mode;\ntransitions\n  a -[rate 1.0]-> b;\n  a -[when c >= 1.0]-> b;");
  expect_sema_error "invariant on markovian mode" "no invariant"
    (wrap_impl
       "subcomponents\n  c: data clock;\nmodes\n  a: initial mode while c <= 2.0;\n  b: mode;\ntransitions\n  a -[rate 1.0]-> b;");
  expect_sema_error "reset on event transition" "internal guarded"
    {|
device D
end D;
device implementation D.I
end D.I;
system S
features
  e: in event port;
end S;
system implementation S.I
subcomponents
  d: device D.I;
modes
  a: initial mode;
transitions
  a -[e then reset d]-> a;
end S.I;
root S.I;
|};
  expect_sema_error "bad connection direction" "direction"
    {|
device D
features
  o: out data port int := 0;
end D;
device implementation D.I
end D.I;
system S
end S;
system implementation S.I
subcomponents
  d1: device D.I;
  d2: device D.I;
connections
  d1.o -> d2.o;
end S.I;
root S.I;
|};
  expect_sema_error "event/data mix" "mixes"
    {|
device D
features
  o: out data port int := 0;
  e: in event port;
end D;
device implementation D.I
end D.I;
system S
end S;
system implementation S.I
subcomponents
  d1: device D.I;
  d2: device D.I;
connections
  d1.o -> d2.e;
end S.I;
root S.I;
|};
  expect_sema_error "flow on input port" "must be an output port"
    {|
system S
features
  i: in data port int := 0;
end S;
system implementation S.I
flows
  i := 3;
end S.I;
root S.I;
|};
  expect_sema_error "flow and assignment conflict" "assigned by a transition"
    (wrap_impl "flows\n  v := 1;\nmodes\n  a: initial mode;\ntransitions\n  a -[then v := 2]-> a;");
  expect_sema_error "error model needs initial" "exactly one initial"
    {|
error model E
states
  a: state;
end E;
system S
end S;
system implementation S.I
end S.I;
root S.I;
|};
  expect_sema_error "within on exponential state" "mixes exponential"
    {|
error model E
states
  a: initial state;
  b: state;
events
  ev: occurrence poisson 1.0;
transitions
  a -[ev]-> b;
  a -[within 1.0 .. 2.0]-> b;
end E;
system S
end S;
system implementation S.I
end S.I;
root S.I;
|};
  expect_sema_error "negative rate" "must be positive"
    {|
error model E
states
  a: initial state;
events
  ev: occurrence poisson -1.0;
end E;
system S
end S;
system implementation S.I
end S.I;
root S.I;
|};
  expect_sema_error "unknown error state in injection" "unknown error state"
    {|
error model E
states
  a: initial state;
end E;
system S
features
  v: out data port bool := true;
end S;
system implementation S.I
end S.I;
extend with_nothing with E
injections
  inject zz: v := false;
end extend;
root S.I;
|}

let test_sema_rejections_more () =
  expect_sema_error "duplicate feature" "duplicate feature"
    "system S\nfeatures\n  a: out data port int := 0;\n  a: in event port;\nend S;\nsystem implementation S.I\nend S.I;\nroot S.I;";
  expect_sema_error "clock port" "cannot be ports"
    "system S\nfeatures\n  c: out data port clock;\nend S;\nsystem implementation S.I\nend S.I;\nroot S.I;";
  expect_sema_error "empty int range" "empty integer range"
    "system S\nfeatures\n  v: out data port int [5, 2] := 5;\nend S;\nsystem implementation S.I\nend S.I;\nroot S.I;";
  expect_sema_error "category mismatch" "category differs"
    "system S\nend S;\ndevice implementation S.I\nend S.I;\nroot S.I;";
  expect_sema_error "unknown subcomponent impl" "unknown implementation"
    (wrap_impl "subcomponents\n  d: device Nope.I;");
  expect_sema_error "activation in unknown mode" "unknown mode"
    {|
device D
end D;
device implementation D.I
end D.I;
system S
end S;
system implementation S.I
subcomponents
  d: device D.I in modes (zz);
modes
  a: initial mode;
end S.I;
root S.I;
|};
  expect_sema_error "derivative of discrete" "not a clock"
    (wrap_impl "subcomponents\n  n: data int := 0;\nmodes\n  a: initial mode der n = 1.0;");
  expect_sema_error "trigger not event port" "not an event port"
    {|
system S
features
  v: out data port int := 0;
end S;
system implementation S.I
modes
  a: initial mode;
transitions
  a -[v]-> a;
end S.I;
root S.I;
|};
  expect_sema_error "assignment type mismatch" "assignment of"
    (wrap_impl "subcomponents\n  n: data int := 0;\nmodes\n  a: initial mode;\ntransitions\n  a -[then n := 1.5]-> a;");
  expect_sema_error "assign bool to int" "assignment of"
    (wrap_impl "subcomponents\n  n: data int := 0;\nmodes\n  a: initial mode;\ntransitions\n  a -[then n := true]-> a;");
  expect_sema_error "within negative" "invalid delay window"
    {|
error model E
states
  a: initial state;
  b: state;
transitions
  a -[within 2.0 .. 1.0]-> b;
end E;
system S
end S;
system implementation S.I
end S.I;
root S.I;
|};
  expect_sema_error "unknown error trigger" "unknown error event"
    {|
error model E
states
  a: initial state;
transitions
  a -[zz]-> a;
end E;
system S
end S;
system implementation S.I
end S.I;
root S.I;
|};
  expect_sema_error "duplicate implementation" "duplicate implementation"
    "system S\nend S;\nsystem implementation S.I\nend S.I;\nsystem implementation S.I\nend S.I;\nroot S.I;";
  expect_sema_error "transitions without modes" "no modes"
    {|
system S
features
  v: out data port int := 0;
end S;
system implementation S.I
transitions
  a -[then v := 1]-> a;
end S.I;
root S.I;
|}

let test_sema_type_inference_details () =
  (* mod on reals, boolean ordering, arithmetic on booleans *)
  expect_sema_error "mod on reals" "requires integers"
    (wrap_impl "subcomponents\n  x: data real := 0.0;\nmodes\n  a: initial mode while x mod 2.0 = 0.0;");
  expect_sema_error "ordering booleans" "ordering a Boolean"
    {|
system S
features
  b: out data port bool := false;
end S;
system implementation S.I
modes
  a: initial mode while b < true;
end S.I;
root S.I;
|};
  expect_sema_error "arith on booleans" "arithmetic on a Boolean"
    {|
system S
features
  b: out data port bool := false;
  v: out data port int := 0;
end S;
system implementation S.I
modes
  a: initial mode;
transitions
  a -[then v := b + 1]-> a;
end S.I;
root S.I;
|}

(* --- instantiation and translation --- *)

let load src =
  match Loader.load_string src with
  | Ok l -> l
  | Error e -> Alcotest.failf "load failed: %s" e

let test_instance_tree () =
  let { Loader.tables; _ } = load (Slimsim_models.Sensor_filter.source ~n:3) in
  match Instance.build tables with
  | Error e -> Alcotest.fail e
  | Ok root ->
    Alcotest.(check int) "instance count" 9 (Instance.count root);
    Alcotest.(check bool) "find nested" true
      (Instance.find root [ "sensors"; "s2" ] <> None);
    Alcotest.(check bool) "missing path" true (Instance.find root [ "nope" ] = None)

let test_translate_gps () =
  let { Loader.network = net; _ } = load Slimsim_models.Gps.source in
  (* processes: main, gps, gps#GPSFail *)
  Alcotest.(check int) "three processes" 3 (Slimsim_sta.Network.n_procs net);
  Alcotest.(check bool) "injected view exists" true
    (Slimsim_sta.Network.find_var net "gps.measurement#inj" <> None);
  Alcotest.(check bool) "error timer exists" true
    (Slimsim_sta.Network.find_var net "gps#GPSFail.timer" <> None);
  let err = Option.get (Slimsim_sta.Network.find_proc net "gps#GPSFail") in
  let proc = net.Slimsim_sta.Network.procs.(err) in
  Alcotest.(check int) "four error states" 4 (Array.length proc.Slimsim_sta.Automaton.locations);
  (* the reset event exists and the error automaton participates *)
  let reset_evt =
    Array.to_list net.Slimsim_sta.Network.events
    |> List.exists (fun e -> e = "reset:gps")
  in
  Alcotest.(check bool) "reset event created" true reset_evt

let test_translate_initial_flows () =
  let { Loader.network = net; _ } = load (Slimsim_models.Launcher.source ~variant:`Permanent) in
  let s = Slimsim_sta.State.initial net in
  let v name =
    match Slimsim_sta.Network.find_var net name with
    | Some i -> s.Slimsim_sta.State.vals.(i)
    | None -> Alcotest.failf "missing variable %s" name
  in
  (* the gyros hold nav up at t = 0, commands flow through the votes *)
  Alcotest.(check bool) "nav true initially" true
    (Slimsim_sta.Value.equal (v "navbus.nav") (Slimsim_sta.Value.Bool true));
  Alcotest.(check bool) "thrusters live initially" true
    (Slimsim_sta.Value.equal (v "thrusters.ctl") (Slimsim_sta.Value.Bool true));
  Alcotest.(check bool) "triplex vote true" true
    (Slimsim_sta.Value.equal (v "tri1.cmd") (Slimsim_sta.Value.Bool true))

let test_translate_rejects_bad_extension () =
  let src =
    {|
error model E
states
  a: initial state;
end E;
system S
end S;
system implementation S.I
end S.I;
extend nothere with E
end extend;
root S.I;
|}
  in
  match Loader.load_string src with
  | Error e ->
    Alcotest.(check bool) "mentions unknown instance" true
      (Astring_contains.contains e "unknown instance")
  | Ok _ -> Alcotest.fail "expected a translation error"

let test_property_resolution () =
  let { Loader.network = net; _ } = load Slimsim_models.Gps.source in
  (match Loader.parse_goal net "gps in mode active and not gps.measurement" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (* error automaton states are reachable through the instance path *)
  (match Loader.parse_goal net "gps in mode transient" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "unknown variable rejected" true
    (Result.is_error (Loader.parse_goal net "gps.nonsense"));
  Alcotest.(check bool) "unknown mode rejected" true
    (Result.is_error (Loader.parse_goal net "gps in mode nonsense"))

let suite =
  [
    Alcotest.test_case "lexer basics" `Quick test_lexer_basics;
    Alcotest.test_case "lexer comments" `Quick test_lexer_comments;
    Alcotest.test_case "lexer errors" `Quick test_lexer_errors;
    Alcotest.test_case "parser precedence" `Quick test_parser_precedence;
    Alcotest.test_case "parser mode atoms" `Quick test_parser_mode_atoms;
    Alcotest.test_case "parser rejects" `Quick test_parser_errors;
    Alcotest.test_case "parse gps model" `Quick test_parse_gps_model;
    Alcotest.test_case "parse transition forms" `Quick test_parse_transition_forms;
    Alcotest.test_case "parse model rejects" `Quick test_parse_rejects;
    Alcotest.test_case "roundtrip gps" `Quick test_roundtrip_gps;
    Alcotest.test_case "roundtrip generated models" `Quick test_roundtrip_generated;
    qcheck_expr_roundtrip;
    Alcotest.test_case "sema accepts shipped models" `Quick test_sema_accepts_models;
    Alcotest.test_case "sema rejections" `Quick test_sema_rejections;
    Alcotest.test_case "sema rejections (more)" `Quick test_sema_rejections_more;
    Alcotest.test_case "sema type inference" `Quick test_sema_type_inference_details;
    Alcotest.test_case "instance tree" `Quick test_instance_tree;
    Alcotest.test_case "translate gps" `Quick test_translate_gps;
    Alcotest.test_case "translate initial flows" `Quick test_translate_initial_flows;
    Alcotest.test_case "translate rejects bad extension" `Quick test_translate_rejects_bad_extension;
    Alcotest.test_case "property resolution" `Quick test_property_resolution;
  ]
