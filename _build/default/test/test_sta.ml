(* Tests for the STA core: values, expressions, the linear-in-delay
   solver, automaton validation, and move enumeration on hand-built
   networks. *)

open Slimsim_sta
module I = Slimsim_intervals.Interval_set

let v_bool b = Value.Bool b
let v_int n = Value.Int n
let v_real x = Value.Real x

(* --- values --- *)

let test_value_arith () =
  Alcotest.(check bool) "int add" true (Value.equal (Value.add (v_int 2) (v_int 3)) (v_int 5));
  Alcotest.(check bool) "mixed add promotes" true
    (Value.equal (Value.add (v_int 2) (v_real 0.5)) (v_real 2.5));
  Alcotest.(check bool) "int div truncates" true
    (Value.equal (Value.div (v_int 7) (v_int 2)) (v_int 3));
  Alcotest.(check bool) "real div" true
    (Value.equal (Value.div (v_real 7.0) (v_int 2)) (v_real 3.5));
  Alcotest.(check bool) "int = real comparison" true (Value.equal (v_int 3) (v_real 3.0));
  Alcotest.(check bool) "min" true (Value.equal (Value.min_v (v_int 3) (v_real 2.5)) (v_real 2.5));
  (try
     ignore (Value.add (v_bool true) (v_int 1));
     Alcotest.fail "bool arithmetic must raise"
   with Value.Type_error _ -> ());
  try
    ignore (Value.div (v_int 1) (v_int 0));
    Alcotest.fail "division by zero must raise"
  with Value.Type_error _ -> ()

(* --- expressions --- *)

let eval_const e = Expr.eval ~env:(fun _ -> assert false) ~at_loc:(fun _ _ -> false) e

let test_expr_eval () =
  let e =
    Expr.Binop (Expr.Add, Expr.int 2, Expr.Binop (Expr.Mul, Expr.int 3, Expr.int 4))
  in
  Alcotest.(check bool) "2+3*4" true (Value.equal (eval_const e) (v_int 14));
  let env v = [| v_int 5; v_real 1.5; v_bool true |].(v) in
  let at_loc p l = p = 0 && l = 2 in
  let eval e = Expr.eval ~env ~at_loc e in
  Alcotest.(check bool) "var lookup" true (Value.equal (eval (Expr.var 0)) (v_int 5));
  Alcotest.(check bool) "loc atom true" true
    (Value.equal (eval (Expr.Loc (0, 2))) (v_bool true));
  Alcotest.(check bool) "loc atom false" true
    (Value.equal (eval (Expr.Loc (1, 2))) (v_bool false));
  Alcotest.(check bool) "comparison promotes" true
    (Value.equal (eval (Expr.Binop (Expr.Lt, Expr.var 1, Expr.var 0))) (v_bool true));
  Alcotest.(check bool) "ite" true
    (Value.equal
       (eval (Expr.Ite (Expr.var 2, Expr.int 1, Expr.int 0)))
       (v_int 1));
  Alcotest.(check bool) "implies" true
    (Value.equal
       (eval (Expr.Binop (Expr.Implies, Expr.false_, Expr.false_)))
       (v_bool true))

let test_expr_helpers () =
  Alcotest.(check bool) "and_ unit" true (Expr.and_ Expr.true_ (Expr.var 0) = Expr.var 0);
  Alcotest.(check bool) "and_ absorbing" true
    (Expr.and_ Expr.false_ (Expr.var 0) = Expr.false_);
  Alcotest.(check bool) "or_ unit" true (Expr.or_ Expr.false_ (Expr.var 0) = Expr.var 0);
  Alcotest.(check bool) "not_ involution" true
    (Expr.not_ (Expr.not_ (Expr.var 3)) = Expr.var 3);
  Alcotest.(check (list int)) "free vars sorted"
    [ 0; 1; 4 ]
    (Expr.free_vars
       (Expr.Binop (Expr.Add, Expr.var 4, Expr.Binop (Expr.Mul, Expr.var 0, Expr.var 1))));
  let renamed = Expr.map_vars (fun v -> v + 10) (Expr.var 1) in
  Alcotest.(check bool) "map_vars" true (renamed = Expr.var 11);
  let substituted =
    Expr.subst (fun v -> if v = 1 then Some (Expr.int 9) else None) (Expr.var 1)
  in
  Alcotest.(check bool) "subst" true (substituted = Expr.int 9)

(* --- linear solver --- *)

(* variables: 0 = clock x (rate 1), 1 = continuous e (rate -2),
   2 = discrete n *)
let lin_env v = [| v_real 4.0; v_real 10.0; v_int 3 |].(v)
let lin_rate v = [| 1.0; -2.0; 0.0 |].(v)
let sat e = Linear.sat_set ~env:lin_env ~rate:lin_rate ~at_loc:(fun _ _ -> false) e

let set_testable = Alcotest.testable I.pp I.equal

let test_linear_atoms () =
  (* x + d >= 10  <=>  d >= 6 *)
  Alcotest.check set_testable "clock lower bound" (I.at_least 6.0)
    (sat (Expr.Binop (Expr.Ge, Expr.var 0, Expr.real 10.0)));
  (* x + d < 10  <=>  d < 6 *)
  Alcotest.check set_testable "clock strict upper" (I.less_than 6.0)
    (sat (Expr.Binop (Expr.Lt, Expr.var 0, Expr.real 10.0)));
  (* e - 2d <= 0  <=>  d >= 5 *)
  Alcotest.check set_testable "draining lower bound" (I.at_least 5.0)
    (sat (Expr.Binop (Expr.Le, Expr.var 1, Expr.real 0.0)));
  (* equality with drift is a point *)
  Alcotest.check set_testable "equality point" (I.point 5.0)
    (sat (Expr.Binop (Expr.Eq, Expr.var 1, Expr.real 0.0)));
  (* inequality with drift is the complement of a point *)
  Alcotest.check set_testable "disequality" (I.complement (I.point 5.0))
    (sat (Expr.Binop (Expr.Neq, Expr.var 1, Expr.real 0.0)));
  (* discrete atoms are delay-invariant *)
  Alcotest.check set_testable "discrete true" I.full
    (sat (Expr.Binop (Expr.Eq, Expr.var 2, Expr.int 3)));
  Alcotest.check set_testable "discrete false" I.empty
    (sat (Expr.Binop (Expr.Gt, Expr.var 2, Expr.int 3)))

let test_linear_boolean_structure () =
  (* 10 <= x <= 12  <=>  6 <= d <= 8 *)
  let g =
    Expr.and_
      (Expr.Binop (Expr.Ge, Expr.var 0, Expr.real 10.0))
      (Expr.Binop (Expr.Le, Expr.var 0, Expr.real 12.0))
  in
  Alcotest.check set_testable "conjunction window" (I.closed 6.0 8.0) (sat g);
  let disj =
    Expr.or_
      (Expr.Binop (Expr.Le, Expr.var 0, Expr.real 5.0))
      (Expr.Binop (Expr.Ge, Expr.var 0, Expr.real 10.0))
  in
  Alcotest.check set_testable "disjunction"
    (I.union (I.at_most 1.0) (I.at_least 6.0))
    (sat disj);
  Alcotest.check set_testable "negation" (I.greater_than 6.0)
    (sat (Expr.not_ (Expr.Binop (Expr.Le, Expr.var 0, Expr.real 10.0))));
  (* both sides drifting: x + d >= e - 2d  <=>  4 + d >= 10 - 2d  <=> d >= 2 *)
  Alcotest.check set_testable "two drifting sides" (I.at_least 2.0)
    (sat (Expr.Binop (Expr.Ge, Expr.var 0, Expr.var 1)))

let test_linear_arithmetic () =
  (* 2*x + 1 <= 11  <=>  2(4+d) <= 10  <=>  d <= 1 *)
  let lhs =
    Expr.Binop (Expr.Add, Expr.Binop (Expr.Mul, Expr.real 2.0, Expr.var 0), Expr.real 1.0)
  in
  Alcotest.check set_testable "affine arithmetic" (I.at_most 1.0)
    (sat (Expr.Binop (Expr.Le, lhs, Expr.real 11.0)));
  (* division by a constant *)
  Alcotest.check set_testable "division" (I.at_most 16.0)
    (sat
       (Expr.Binop
          (Expr.Le, Expr.Binop (Expr.Div, Expr.var 0, Expr.real 2.0), Expr.real 10.0)))

let test_linear_rejects_nonlinear () =
  let product = Expr.Binop (Expr.Mul, Expr.var 0, Expr.var 1) in
  (try
     ignore (sat (Expr.Binop (Expr.Le, product, Expr.real 1.0)));
     Alcotest.fail "product of drifting terms must raise"
   with Linear.Nonlinear _ -> ());
  try
    ignore
      (sat
         (Expr.Binop
            (Expr.Le, Expr.Binop (Expr.Div, Expr.real 1.0, Expr.var 0), Expr.real 1.0)));
    Alcotest.fail "division by drifting term must raise"
  with Linear.Nonlinear _ -> ()

let test_linear_constant_product_ok () =
  (* a drifting term times a constant-in-delay variable is fine *)
  let e = Expr.Binop (Expr.Mul, Expr.var 2, Expr.var 0) in
  (* 3 * (4 + d) >= 24  <=>  d >= 4 *)
  Alcotest.check set_testable "const * drifting" (I.at_least 4.0)
    (sat (Expr.Binop (Expr.Ge, e, Expr.real 24.0)))

(* --- automaton validation --- *)

let loc ?(invariant = Expr.true_) name = { Automaton.loc_name = name; invariant; derivs = [] }

let test_automaton_validation () =
  let mk transitions =
    Automaton.make ~name:"p"
      ~locations:[| loc "a"; loc "b" |]
      ~initial:0 ~transitions
  in
  (* fine: one rate transition *)
  ignore
    (mk
       [ { Automaton.src = 0; dst = 1; label = Automaton.Tau; guard = Automaton.Rate 1.0; updates = []; weight = 1.0 } ]);
  (* mixing internal guards and rates in one location is rejected *)
  (try
     ignore
       (mk
          [
            { Automaton.src = 0; dst = 1; label = Automaton.Tau; guard = Automaton.Rate 1.0; updates = []; weight = 1.0 };
            { Automaton.src = 0; dst = 1; label = Automaton.Tau; guard = Automaton.Guard Expr.true_; updates = []; weight = 1.0 };
          ]);
     Alcotest.fail "mixing must be rejected"
   with Automaton.Invalid_process _ -> ());
  (* event-labelled receptions may coexist with rates *)
  ignore
    (mk
       [
         { Automaton.src = 0; dst = 1; label = Automaton.Tau; guard = Automaton.Rate 1.0; updates = []; weight = 1.0 };
         { Automaton.src = 0; dst = 0; label = Automaton.Event 0; guard = Automaton.Guard Expr.true_; updates = []; weight = 1.0 };
       ]);
  (* a rate on a synchronizing label is rejected *)
  (try
     ignore
       (mk
          [ { Automaton.src = 0; dst = 1; label = Automaton.Event 0; guard = Automaton.Rate 1.0; updates = []; weight = 1.0 } ]);
     Alcotest.fail "rate on event label must be rejected"
   with Automaton.Invalid_process _ -> ());
  (* Markovian locations need a trivial invariant *)
  (try
     ignore
       (Automaton.make ~name:"p"
          ~locations:[| loc ~invariant:(Expr.Binop (Expr.Le, Expr.var 0, Expr.real 1.0)) "a"; loc "b" |]
          ~initial:0
          ~transitions:
            [ { Automaton.src = 0; dst = 1; label = Automaton.Tau; guard = Automaton.Rate 1.0; updates = []; weight = 1.0 } ]);
     Alcotest.fail "invariant on Markovian location must be rejected"
   with Automaton.Invalid_process _ -> ());
  (* non-positive rates rejected *)
  try
    ignore
      (mk
         [ { Automaton.src = 0; dst = 1; label = Automaton.Tau; guard = Automaton.Rate 0.0; updates = []; weight = 1.0 } ]);
    Alcotest.fail "zero rate must be rejected"
  with Automaton.Invalid_process _ -> ()

(* --- a hand-built two-process network with synchronization --- *)

(* Process A: l0 --(evt 0, guard x >= 2)--> l1, clock x (var 0), invariant x <= 5 in l0.
   Process B: m0 --(evt 0)--> m1; also m0 --(tau, y >= 4)--> m2 with clock y (var 1). *)
let sync_network () =
  let x = 0 and y = 1 in
  let ge v c = Expr.Binop (Expr.Ge, Expr.var v, Expr.real c) in
  let le v c = Expr.Binop (Expr.Le, Expr.var v, Expr.real c) in
  let proc_a =
    Automaton.make ~name:"a"
      ~locations:
        [| { Automaton.loc_name = "l0"; invariant = le x 5.0; derivs = [] };
           { Automaton.loc_name = "l1"; invariant = Expr.true_; derivs = [] } |]
      ~initial:0
      ~transitions:
        [ { Automaton.src = 0; dst = 1; label = Automaton.Event 0; guard = Automaton.Guard (ge x 2.0); updates = []; weight = 1.0 } ]
  in
  let proc_b =
    Automaton.make ~name:"b"
      ~locations:
        [| { Automaton.loc_name = "m0"; invariant = Expr.true_; derivs = [] };
           { Automaton.loc_name = "m1"; invariant = Expr.true_; derivs = [] };
           { Automaton.loc_name = "m2"; invariant = Expr.true_; derivs = [] } |]
      ~initial:0
      ~transitions:
        [
          { Automaton.src = 0; dst = 1; label = Automaton.Event 0; guard = Automaton.Guard Expr.true_; updates = []; weight = 1.0 };
          { Automaton.src = 0; dst = 2; label = Automaton.Tau; guard = Automaton.Guard (ge y 4.0); updates = [ (y, Expr.real 0.0) ]; weight = 1.0 };
        ]
  in
  Network.make
    ~procs:[ (proc_a, Network.default_meta); (proc_b, Network.default_meta) ]
    ~vars:
      [|
        { Network.var_name = "x"; kind = Network.Clock; init = Value.Real 0.0; owner = Some 0 };
        { Network.var_name = "y"; kind = Network.Clock; init = Value.Real 0.0; owner = Some 1 };
      |]
    ~events:[| "e" |] ~flows:[]

let test_network_lookup () =
  let net = sync_network () in
  Alcotest.(check int) "procs" 2 (Network.n_procs net);
  Alcotest.(check (option int)) "find_var" (Some 1) (Network.find_var net "y");
  Alcotest.(check (option int)) "find_proc" (Some 1) (Network.find_proc net "b");
  Alcotest.(check (option int)) "find_loc" (Some 2) (Network.find_loc net ~proc:1 "m2");
  Alcotest.(check (list int)) "participants of e" [ 0; 1 ]
    net.Network.participants.(0)

let test_moves_windows () =
  let net = sync_network () in
  let s = State.initial net in
  let inv = Moves.invariant_window net s in
  Alcotest.check set_testable "invariant window" (I.closed 0.0 5.0) inv;
  let moves = Moves.discrete net s in
  Alcotest.(check int) "two global moves" 2 (List.length moves);
  let find_sync =
    List.find_map
      (fun { Moves.move; window } ->
        match move with Moves.Sync _ -> Some window | Moves.Local _ -> None)
      moves
  and find_tau =
    List.find_map
      (fun { Moves.move; window } ->
        match move with Moves.Local _ -> Some window | Moves.Sync _ -> None)
      moves
  in
  (* sync needs a's guard (d >= 2) within the invariant (d <= 5) *)
  Alcotest.check set_testable "sync window" (I.closed 2.0 5.0)
    (Option.get find_sync);
  (* b's tau: y >= 4 within d <= 5 *)
  Alcotest.check set_testable "tau window" (I.closed 4.0 5.0) (Option.get find_tau)

let test_moves_apply_sync () =
  let net = sync_network () in
  let s = State.initial net in
  let moves = Moves.discrete net s in
  let sync =
    List.find_map
      (fun { Moves.move; _ } ->
        match move with Moves.Sync _ -> Some move | Moves.Local _ -> None)
      moves
    |> Option.get
  in
  let s' = Moves.apply net s ~delay:3.0 sync in
  Alcotest.(check int) "a moved" 1 s'.State.locs.(0);
  Alcotest.(check int) "b moved" 1 s'.State.locs.(1);
  Alcotest.(check (float 1e-9)) "time advanced" 3.0 s'.State.time;
  Alcotest.(check (float 1e-9)) "clock advanced" 3.0
    (Value.as_float s'.State.vals.(0))

let test_moves_apply_updates () =
  let net = sync_network () in
  let s = State.initial net in
  let s = State.advance net s 4.5 in
  let moves = Moves.discrete net s in
  (* after 4.5, the tau of b is enabled now *)
  let tau =
    List.find_map
      (fun { Moves.move; window } ->
        match move with
        | Moves.Local _ when I.mem 0.0 window -> Some move
        | _ -> None)
      moves
    |> Option.get
  in
  let s' = Moves.apply net s tau in
  Alcotest.(check int) "b at m2" 2 s'.State.locs.(1);
  Alcotest.(check (float 1e-9)) "y reset by update" 0.0
    (Value.as_float s'.State.vals.(1));
  Alcotest.(check (float 1e-9)) "x untouched" 4.5 (Value.as_float s'.State.vals.(0))

let test_enabled_after_filters () =
  let net = sync_network () in
  let s = State.initial net in
  let moves = Moves.discrete net s in
  Alcotest.(check int) "nothing enabled at 1.0" 0
    (List.length (Moves.enabled_after net s 1.0 moves));
  Alcotest.(check int) "sync enabled at 2.0" 1
    (List.length (Moves.enabled_after net s 2.0 moves));
  Alcotest.(check int) "both enabled at 4.5" 2
    (List.length (Moves.enabled_after net s 4.5 moves))

let test_state_restart () =
  let net = sync_network () in
  let s = State.advance net (State.initial net) 3.0 in
  let meta_owned = State.restart_proc net s 1 in
  (* proc 1 owns no vars in default_meta, location resets *)
  Alcotest.(check int) "location reset" 0 meta_owned.State.locs.(1)

let test_flow_cycle_rejected () =
  let vars =
    [|
      { Network.var_name = "u"; kind = Network.Discrete; init = Value.Int 0; owner = None };
      { Network.var_name = "v"; kind = Network.Discrete; init = Value.Int 0; owner = None };
    |]
  in
  let proc =
    Automaton.make ~name:"p"
      ~locations:[| loc "a" |]
      ~initial:0 ~transitions:[]
  in
  try
    ignore
      (Network.make
         ~procs:[ (proc, Network.default_meta) ]
         ~vars ~events:[||]
         ~flows:
           [ { Network.target = 0; expr = Expr.var 1 }; { Network.target = 1; expr = Expr.var 0 } ]);
    Alcotest.fail "flow cycle must be rejected"
  with Network.Invalid_network _ -> ()

let test_flow_ordering () =
  (* flows are applied in dependency order regardless of declaration order *)
  let vars =
    [|
      { Network.var_name = "a"; kind = Network.Discrete; init = Value.Int 1; owner = None };
      { Network.var_name = "b"; kind = Network.Discrete; init = Value.Int 0; owner = None };
      { Network.var_name = "c"; kind = Network.Discrete; init = Value.Int 0; owner = None };
    |]
  in
  let proc =
    Automaton.make ~name:"p" ~locations:[| loc "l" |] ~initial:0 ~transitions:[]
  in
  let net =
    Network.make
      ~procs:[ (proc, Network.default_meta) ]
      ~vars ~events:[||]
      ~flows:
        [
          (* declared consumer-first on purpose *)
          { Network.target = 2; expr = Expr.Binop (Expr.Add, Expr.var 1, Expr.int 1) };
          { Network.target = 1; expr = Expr.Binop (Expr.Add, Expr.var 0, Expr.int 1) };
        ]
  in
  let s = State.initial net in
  Alcotest.(check bool) "b = a+1" true (Value.equal s.State.vals.(1) (Value.Int 2));
  Alcotest.(check bool) "c = b+1" true (Value.equal s.State.vals.(2) (Value.Int 3))

let suite =
  [
    Alcotest.test_case "value arithmetic" `Quick test_value_arith;
    Alcotest.test_case "expr evaluation" `Quick test_expr_eval;
    Alcotest.test_case "expr helpers" `Quick test_expr_helpers;
    Alcotest.test_case "linear atoms" `Quick test_linear_atoms;
    Alcotest.test_case "linear boolean structure" `Quick test_linear_boolean_structure;
    Alcotest.test_case "linear arithmetic" `Quick test_linear_arithmetic;
    Alcotest.test_case "nonlinear rejected" `Quick test_linear_rejects_nonlinear;
    Alcotest.test_case "constant products allowed" `Quick test_linear_constant_product_ok;
    Alcotest.test_case "automaton validation" `Quick test_automaton_validation;
    Alcotest.test_case "network lookup" `Quick test_network_lookup;
    Alcotest.test_case "move windows" `Quick test_moves_windows;
    Alcotest.test_case "sync application" `Quick test_moves_apply_sync;
    Alcotest.test_case "update application" `Quick test_moves_apply_updates;
    Alcotest.test_case "enabled_after filter" `Quick test_enabled_after_filters;
    Alcotest.test_case "process restart" `Quick test_state_restart;
    Alcotest.test_case "flow cycle rejected" `Quick test_flow_cycle_rejected;
    Alcotest.test_case "flow dependency order" `Quick test_flow_ordering;
  ]
