(* Tests for the property-pattern frontend. *)

module Pattern = Slimsim_props.Pattern

let ok src =
  match Pattern.parse src with Ok p -> p | Error e -> Alcotest.fail e

let test_csl_form () =
  let p = ok "P(<> [0, 3600] sys.failed)" in
  Alcotest.(check (float 1e-9)) "horizon" 3600.0 p.Pattern.horizon;
  Alcotest.(check string) "goal" "sys.failed" p.Pattern.goal_src;
  let p = ok "p(<>[0,12.5] a and not b)" in
  Alcotest.(check (float 1e-9)) "compact syntax" 12.5 p.Pattern.horizon;
  Alcotest.(check string) "complex goal kept verbatim" "a and not b" p.Pattern.goal_src

let test_pattern_form () =
  let p = ok "probability that sys.failed within 100" in
  Alcotest.(check (float 1e-9)) "horizon" 100.0 p.Pattern.horizon;
  Alcotest.(check string) "goal" "sys.failed" p.Pattern.goal_src;
  let p = ok "Probability that a and b within 2.5" in
  Alcotest.(check string) "multi-word goal" "a and b" p.Pattern.goal_src

let test_rejections () =
  List.iter
    (fun src ->
      Alcotest.(check bool) (Printf.sprintf "reject %S" src) true
        (Result.is_error (Pattern.parse src)))
    [
      "";
      "P(sys.failed)";
      "P(<> sys.failed)";
      "P(<> [1, 5] g)" (* must start at 0 *);
      "P(<> [0, -5] g)";
      "P(<> [0, 5] )";
      "probability that g";
      "probability that g within soon";
      "probability that within 5";
    ]

let test_resolution () =
  let model =
    match Slimsim_slim.Loader.load_string Slimsim_models.Gps.source with
    | Ok m -> m
    | Error e -> Alcotest.fail e
  in
  let net = model.Slimsim_slim.Loader.network in
  (match Pattern.resolve net (ok "P(<> [0, 10] gps in mode active)") with
  | Ok (_, None, h) -> Alcotest.(check (float 1e-9)) "resolved horizon" 10.0 h
  | Ok (_, Some _, _) -> Alcotest.fail "unexpected hold"
  | Error e -> Alcotest.fail e);
  (match Pattern.resolve net (ok "P(gps.measurement U [0, 10] gps in mode active)") with
  | Ok (_, Some _, h) -> Alcotest.(check (float 1e-9)) "until horizon" 10.0 h
  | Ok (_, None, _) -> Alcotest.fail "expected a hold expression"
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "bad goal rejected" true
    (Result.is_error (Pattern.resolve net (ok "P(<> [0, 10] gps.bogus)")))

let test_to_string_roundtrip () =
  let p = ok "P(<> [0, 60] x > 1)" in
  let p2 = ok (Pattern.to_string p) in
  Alcotest.(check bool) "stable under printing" true (p = p2);
  let u = ok "P(a and b U [0, 60] c)" in
  let u2 = ok (Pattern.to_string u) in
  Alcotest.(check bool) "until stable under printing" true (u = u2)

let test_invariance_form () =
  let p = ok "P([] [0, 30] safe)" in
  Alcotest.(check bool) "complement flagged" true p.Pattern.complement;
  Alcotest.(check string) "goal kept un-negated in the source" "safe" p.Pattern.goal_src;
  let q = ok "probability that safe throughout 30" in
  Alcotest.(check bool) "pattern style" true q.Pattern.complement;
  Alcotest.(check (float 1e-9)) "horizon" 30.0 q.Pattern.horizon;
  let r = ok "probability that g within 5" in
  Alcotest.(check bool) "existence not complemented" false r.Pattern.complement

let test_until_form () =
  let p = ok "P(ok_sig U [0, 42] failed)" in
  Alcotest.(check string) "goal" "failed" p.Pattern.goal_src;
  Alcotest.(check bool) "hold" true (p.Pattern.hold_src = Some "ok_sig");
  Alcotest.(check (float 1e-9)) "horizon" 42.0 p.Pattern.horizon;
  (* parenthesised 'U'-free expressions do not trigger the until split *)
  let q = ok "P(<> [0, 5] a and U_nit)" in
  Alcotest.(check bool) "U as identifier prefix untouched" true
    (q.Pattern.hold_src = None)

let suite =
  [
    Alcotest.test_case "CSL form" `Quick test_csl_form;
    Alcotest.test_case "pattern form" `Quick test_pattern_form;
    Alcotest.test_case "rejections" `Quick test_rejections;
    Alcotest.test_case "resolution" `Quick test_resolution;
    Alcotest.test_case "printing roundtrip" `Quick test_to_string_roundtrip;
    Alcotest.test_case "until form" `Quick test_until_form;
    Alcotest.test_case "invariance form" `Quick test_invariance_form;
  ]
