(* Unit and property tests for the interval-set algebra. *)

module I = Slimsim_intervals.Interval_set

let set_testable = Alcotest.testable I.pp I.equal

let check_set = Alcotest.check set_testable

(* --- generators for qcheck --- *)

let gen_bound_pair =
  QCheck2.Gen.(
    let* a = float_range (-50.0) 50.0 in
    let* w = float_range 0.0 20.0 in
    let* lc = bool and* hc = bool in
    let* shape = int_range 0 9 in
    match shape with
    | 0 -> return (I.Neg_inf, I.Fin (a, hc))
    | 1 -> return (I.Fin (a, lc), I.Pos_inf)
    | 2 -> return (I.Fin (a, true), I.Fin (a, true)) (* point *)
    | _ -> return (I.Fin (a, lc), I.Fin (a +. w, hc)))

let gen_set =
  QCheck2.Gen.(
    let* n = int_range 0 4 in
    let* pairs = list_size (return n) gen_bound_pair in
    return (I.of_intervals pairs))

(* Probe points at and around all finite endpoints plus fixed probes —
   membership at these decides set equality for our constructions. *)
let probes s1 s2 =
  let endpoints s =
    List.concat_map
      (fun (iv : I.interval) ->
        let of_bound = function I.Fin (x, _) -> [ x ] | _ -> [] in
        of_bound iv.I.lo @ of_bound iv.I.hi)
      (I.intervals s)
  in
  let base = endpoints s1 @ endpoints s2 @ [ -1000.0; 0.0; 1000.0 ] in
  List.concat_map (fun x -> [ x -. 1e-6; x; x +. 1e-6 ]) base

let forall_probes s1 s2 f = List.for_all f (probes s1 s2)

(* --- unit tests --- *)

let test_constructors () =
  check_set "closed empty when inverted" I.empty (I.closed 2.0 1.0);
  check_set "open degenerate is empty" I.empty (I.open_ 1.0 1.0);
  Alcotest.(check bool) "point mem" true (I.mem 5.0 (I.point 5.0));
  Alcotest.(check bool) "point not mem" false (I.mem 5.0001 (I.point 5.0));
  Alcotest.(check bool) "at_least includes bound" true (I.mem 3.0 (I.at_least 3.0));
  Alcotest.(check bool) "greater_than excludes bound" false
    (I.mem 3.0 (I.greater_than 3.0));
  Alcotest.(check bool) "full contains everything" true (I.mem 1e12 I.full)

let test_union_merging () =
  check_set "touching closed intervals merge" (I.closed 0.0 2.0)
    (I.union (I.closed 0.0 1.0) (I.closed 1.0 2.0));
  check_set "half-open chain merges"
    (I.union (I.closed 0.0 1.0) (I.open_ 1.0 2.0) |> I.union (I.point 2.0))
    (I.closed 0.0 2.0);
  (* (0,1) u (1,2) must NOT merge: 1 is missing *)
  let s = I.union (I.open_ 0.0 1.0) (I.open_ 1.0 2.0) in
  Alcotest.(check int) "two components" 2 (List.length (I.intervals s));
  Alcotest.(check bool) "gap point missing" false (I.mem 1.0 s)

let test_complement () =
  let s = I.complement (I.closed 1.0 2.0) in
  Alcotest.(check bool) "left of hole" true (I.mem 0.999 s);
  Alcotest.(check bool) "left edge excluded" false (I.mem 1.0 s);
  Alcotest.(check bool) "inside excluded" false (I.mem 1.5 s);
  Alcotest.(check bool) "right edge excluded" false (I.mem 2.0 s);
  Alcotest.(check bool) "right of hole" true (I.mem 2.001 s);
  check_set "complement of full" I.empty (I.complement I.full);
  check_set "complement of empty" I.full (I.complement I.empty)

let test_inter () =
  check_set "overlap" (I.closed 1.0 2.0)
    (I.inter (I.closed 0.0 2.0) (I.closed 1.0 3.0));
  check_set "disjoint" I.empty (I.inter (I.closed 0.0 1.0) (I.closed 2.0 3.0));
  check_set "touching closed gives point" (I.point 1.0)
    (I.inter (I.closed 0.0 1.0) (I.closed 1.0 2.0));
  check_set "touching open is empty" I.empty
    (I.inter (I.open_ 0.0 1.0) (I.open_ 1.0 2.0))

let test_measure () =
  Alcotest.(check (float 1e-9)) "closed" 1.0 (I.measure (I.closed 0.0 1.0));
  Alcotest.(check (float 1e-9)) "union" 2.0
    (I.measure (I.union (I.closed 0.0 1.0) (I.closed 5.0 6.0)));
  Alcotest.(check (float 1e-9)) "point" 0.0 (I.measure (I.point 3.0));
  Alcotest.(check bool) "unbounded" true (I.measure (I.at_least 0.0) = infinity)

let test_component_at () =
  let s = I.union (I.closed 0.0 1.0) (I.closed 3.0 4.0) in
  (match I.component_at 0.5 s with
  | Some iv ->
    Alcotest.(check bool) "component is [0,1]" true
      (iv.I.lo = I.Fin (0.0, true) && iv.I.hi = I.Fin (1.0, true))
  | None -> Alcotest.fail "expected a component");
  Alcotest.(check bool) "gap has no component" true (I.component_at 2.0 s = None)

let test_first_point () =
  Alcotest.(check (option (float 1e-9))) "closed attained" (Some 2.0)
    (I.first_point ~eps:1e-9 (I.closed 2.0 3.0));
  (match I.first_point ~eps:1e-9 (I.open_ 2.0 3.0) with
  | Some x -> Alcotest.(check bool) "nudged inside" true (x > 2.0 && x < 3.0)
  | None -> Alcotest.fail "expected a first point");
  Alcotest.(check (option (float 1e-9))) "empty" None (I.first_point ~eps:1e-9 I.empty);
  Alcotest.(check (option (float 1e-9))) "unbounded below" None
    (I.first_point ~eps:1e-9 (I.at_most 0.0))

let test_last_point_below () =
  Alcotest.(check (option (float 1e-9))) "cap beyond sup" (Some 3.0)
    (I.last_point_below ~eps:1e-9 10.0 (I.closed 2.0 3.0));
  Alcotest.(check (option (float 1e-9))) "cap inside" (Some 2.5)
    (I.last_point_below ~eps:1e-9 2.5 (I.closed 2.0 3.0));
  (match I.last_point_below ~eps:1e-9 10.0 (I.open_ 2.0 3.0) with
  | Some x -> Alcotest.(check bool) "nudged inside" true (x < 3.0 && x > 2.0)
  | None -> Alcotest.fail "expected a last point");
  Alcotest.(check (option (float 1e-9))) "cap below set" None
    (I.last_point_below ~eps:1e-9 1.0 (I.closed 2.0 3.0))

let test_sample_uniform () =
  let rng = Slimsim_stats.Rng.create 99L in
  let u01 x = Slimsim_stats.Rng.below rng x in
  let s = I.union (I.closed 0.0 1.0) (I.closed 10.0 11.0) in
  for _ = 1 to 500 do
    match I.sample_uniform u01 s with
    | Some x -> Alcotest.(check bool) "sample in set" true (I.mem x s)
    | None -> Alcotest.fail "expected a sample"
  done;
  Alcotest.(check (option (float 1e-9))) "zero measure picks the point" (Some 4.0)
    (I.sample_uniform u01 (I.point 4.0));
  Alcotest.(check bool) "unbounded not samplable" true
    (I.sample_uniform u01 (I.at_least 0.0) = None)

let test_clamp () =
  check_set "clamp" (I.closed 0.0 2.0) (I.clamp_above 2.0 (I.closed 0.0 5.0));
  check_set "clamp keeps bound closed" (I.point 0.0)
    (I.clamp_above 0.0 (I.closed 0.0 5.0))

(* --- qcheck properties --- *)

let prop cnt name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:cnt ~name gen f)

let qcheck_tests =
  [
    prop 300 "union is membership-wise or"
      QCheck2.Gen.(pair gen_set gen_set)
      (fun (s1, s2) ->
        let u = I.union s1 s2 in
        forall_probes s1 s2 (fun x -> I.mem x u = (I.mem x s1 || I.mem x s2)));
    prop 300 "inter is membership-wise and"
      QCheck2.Gen.(pair gen_set gen_set)
      (fun (s1, s2) ->
        let i = I.inter s1 s2 in
        forall_probes s1 s2 (fun x -> I.mem x i = (I.mem x s1 && I.mem x s2)));
    prop 300 "complement is membership-wise not" gen_set (fun s ->
        let c = I.complement s in
        forall_probes s s (fun x -> I.mem x c = not (I.mem x s)));
    prop 300 "complement is an involution" gen_set (fun s ->
        I.equal s (I.complement (I.complement s)));
    prop 300 "diff = inter complement"
      QCheck2.Gen.(pair gen_set gen_set)
      (fun (s1, s2) -> I.equal (I.diff s1 s2) (I.inter s1 (I.complement s2)));
    prop 300 "de morgan"
      QCheck2.Gen.(pair gen_set gen_set)
      (fun (s1, s2) ->
        I.equal
          (I.complement (I.union s1 s2))
          (I.inter (I.complement s1) (I.complement s2)));
    prop 300 "union measure bounds"
      QCheck2.Gen.(pair gen_set gen_set)
      (fun (s1, s2) ->
        let m = I.measure (I.union s1 s2) in
        m <= I.measure s1 +. I.measure s2 +. 1e-6
        && m >= Float.max (I.measure s1) (I.measure s2) -. 1e-6);
    prop 300 "normalized components are ordered and disjoint" gen_set (fun s ->
        let rec ok = function
          | (a : I.interval) :: (b : I.interval) :: rest ->
            (match a.I.hi, b.I.lo with
            | I.Fin (x, _), I.Fin (y, _) -> x <= y && ok (b :: rest)
            | _ -> false)
          | [ _ ] | [] -> true
        in
        ok (I.intervals s));
    prop 300 "first_point is a member and minimal-ish" gen_set (fun s ->
        match I.first_point ~eps:1e-9 s with
        | None -> true
        | Some x ->
          I.mem x s
          && forall_probes s s (fun y -> (not (I.mem y s)) || y >= x -. 1e-6));
    prop 300 "samples are members" gen_set (fun s ->
        let rng = Slimsim_stats.Rng.create 7L in
        if not (I.is_bounded s) then true
        else
          match I.sample_uniform (Slimsim_stats.Rng.below rng) s with
          | None -> I.is_empty s
          | Some x -> I.mem x s);
  ]

let suite =
  [
    Alcotest.test_case "constructors" `Quick test_constructors;
    Alcotest.test_case "union merging" `Quick test_union_merging;
    Alcotest.test_case "complement" `Quick test_complement;
    Alcotest.test_case "intersection" `Quick test_inter;
    Alcotest.test_case "measure" `Quick test_measure;
    Alcotest.test_case "component_at" `Quick test_component_at;
    Alcotest.test_case "first_point" `Quick test_first_point;
    Alcotest.test_case "last_point_below" `Quick test_last_point_below;
    Alcotest.test_case "sample_uniform" `Quick test_sample_uniform;
    Alcotest.test_case "clamp_above" `Quick test_clamp;
  ]
  @ qcheck_tests
