test/test_translate.ml: Alcotest Array Astring_contains Automaton Expr List Network Option Slimsim_models Slimsim_sim Slimsim_slim Slimsim_sta Slimsim_stats State Value
