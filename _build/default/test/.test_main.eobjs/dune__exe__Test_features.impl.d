test/test_features.ml: Alcotest Astring_contains Float Printf Slimsim_ctmc Slimsim_models Slimsim_sim Slimsim_slim Slimsim_stats Str
