test/test_sta.ml: Alcotest Array Automaton Expr Linear List Moves Network Option Slimsim_intervals Slimsim_sta State Value
