test/test_robustness.ml: Alcotest Array Float Int64 List Printf QCheck2 QCheck_alcotest Result Slimsim Slimsim_ctmc Slimsim_models Slimsim_sim Slimsim_slim Slimsim_stats String
