test/test_safety.ml: Alcotest Astring_contains List Option Printf Result Slimsim_models Slimsim_safety Slimsim_slim Slimsim_sta String
