test/test_props.ml: Alcotest List Printf Result Slimsim_models Slimsim_props Slimsim_slim
