test/test_stats.ml: Alcotest Array Float List Option Printf Result Slimsim_stats
