test/test_integration.ml: Alcotest Float List Printf Result Slimsim Slimsim_models Slimsim_sim
