test/test_sim.ml: Alcotest Array Astring_contains Float Int64 List Printf Slimsim_ctmc Slimsim_models Slimsim_sim Slimsim_slim Slimsim_sta Slimsim_stats String
