test/test_intervals.ml: Alcotest Float List QCheck2 QCheck_alcotest Slimsim_intervals Slimsim_stats
