test/test_slim.ml: Alcotest Array Ast Astring_contains Instance Lexer List Loader Option Parser Pretty Printf QCheck2 QCheck_alcotest Result Sema Slimsim_models Slimsim_slim Slimsim_sta Token
