test/test_ctmc.ml: Alcotest Array Astring_contains List Printf Slimsim_ctmc Slimsim_models Slimsim_slim
