(* Tests for the safety-analysis artifacts: minimal cut sets, fault-tree
   evaluation, and FMEA rows. *)

module Cutsets = Slimsim_safety.Cutsets
module Fmea = Slimsim_safety.Fmea
module Fdir = Slimsim_safety.Fdir
module Loader = Slimsim_slim.Loader
module Sf = Slimsim_models.Sensor_filter

let load src =
  match Loader.load_string src with
  | Ok l -> l.Loader.network
  | Error e -> Alcotest.failf "load failed: %s" e

let goal net src =
  match Loader.parse_goal net src with
  | Ok g -> g
  | Error e -> Alcotest.failf "goal failed: %s" e

let names cs = List.map (fun e -> e.Cutsets.be_label) cs

let test_basic_events () =
  let net = load (Sf.source ~n:2) in
  let events = Cutsets.basic_events net in
  Alcotest.(check int) "four failure modes" 4 (List.length events);
  List.iter
    (fun e -> Alcotest.(check bool) "positive rate" true (e.Cutsets.be_rate > 0.0))
    events

let test_sensor_filter_cut_sets () =
  let net = load (Sf.source ~n:2) in
  let g = goal net Sf.goal_exhausted in
  match Cutsets.minimal_cut_sets net ~goal:g with
  | Error e -> Alcotest.fail e
  | Ok sets ->
    Alcotest.(check int) "two minimal cut sets" 2 (List.length sets);
    List.iter
      (fun cs -> Alcotest.(check int) "order two" 2 (List.length cs))
      sets;
    (* each set stays within one bank *)
    List.iter
      (fun cs ->
        let labels = names cs in
        let all_sensors =
          List.for_all (fun l -> String.length l > 7 && String.sub l 0 7 = "sensors") labels
        and all_filters =
          List.for_all (fun l -> String.length l > 7 && String.sub l 0 7 = "filters") labels
        in
        Alcotest.(check bool) "bank-homogeneous" true (all_sensors || all_filters))
      sets

let test_top_probability_matches_closed_form () =
  let n = 2 in
  let net = load (Sf.source ~n) in
  let g = goal net Sf.goal_exhausted in
  match Cutsets.minimal_cut_sets net ~goal:g with
  | Error e -> Alcotest.fail e
  | Ok sets ->
    List.iter
      (fun horizon ->
        Alcotest.(check (float 1e-9))
          (Printf.sprintf "exact at horizon %g" horizon)
          (Sf.closed_form ~n ~horizon)
          (Cutsets.top_probability sets ~horizon))
      [ 100.0; 1800.0; 100000.0 ]

let test_minimality () =
  (* a model where a single fault already fails the system: the pair
     must not appear as a cut set *)
  let src =
    {|
device D
features
  ok_sig: out data port bool := true;
end D;
device implementation D.I
modes
  run: initial mode;
end D.I;

error model F
states
  ok: initial state;
  dead: state;
events
  fail: occurrence poisson 0.1;
transitions
  ok -[fail]-> dead;
end F;

system Main
end Main;
system implementation Main.Imp
subcomponents
  d1: device D.I;
  d2: device D.I;
end Main.Imp;

extend d1 with F
injections
  inject dead: ok_sig := false;
end extend;

extend d2 with F
injections
  inject dead: ok_sig := false;
end extend;

root Main.Imp;
|}
  in
  let net = load src in
  let g = goal net "not d1.ok_sig" in
  match Cutsets.minimal_cut_sets net ~goal:g with
  | Error e -> Alcotest.fail e
  | Ok sets ->
    Alcotest.(check int) "single minimal cut set" 1 (List.length sets);
    Alcotest.(check int) "of order one" 1 (List.length (List.hd sets))

let test_goal_true_initially () =
  let net = load (Sf.source ~n:1) in
  let g = goal net "true" in
  match Cutsets.minimal_cut_sets net ~goal:g with
  | Error e -> Alcotest.fail e
  | Ok sets -> Alcotest.(check bool) "empty cut set" true (sets = [ [] ])

let test_unreachable_goal () =
  let net = load (Sf.source ~n:2) in
  let g = goal net "sensors.s1.value = 7" in
  match Cutsets.minimal_cut_sets ~max_order:4 net ~goal:g with
  | Error e -> Alcotest.fail e
  | Ok sets -> Alcotest.(check int) "no cut sets" 0 (List.length sets)

let test_fault_tree_dot () =
  let net = load (Sf.source ~n:1) in
  let g = goal net Sf.goal_exhausted in
  match Cutsets.fault_tree net ~goal:g ~top:"failure" with
  | Error e -> Alcotest.fail e
  | Ok t ->
    let dot = Cutsets.to_dot t in
    Alcotest.(check bool) "digraph wrapper" true
      (Astring_contains.contains dot "digraph fault_tree");
    Alcotest.(check bool) "has an AND gate" true (Astring_contains.contains dot "AND");
    Alcotest.(check bool) "has the top event" true (Astring_contains.contains dot "failure")

let test_fmea_rows () =
  let net = load (Sf.source ~n:2) in
  let g = goal net Sf.goal_exhausted in
  match Fmea.analyze net ~goal:g with
  | Error e -> Alcotest.fail e
  | Ok rows ->
    Alcotest.(check int) "one row per failure mode" 4 (List.length rows);
    List.iter
      (fun (r : Fmea.row) ->
        Alcotest.(check bool) "single faults are tolerated" false r.leads_to_failure;
        Alcotest.(check bool) "observed value changed" true (r.local_effects <> []))
      rows

let test_fmea_single_point_of_failure () =
  let net = load (Sf.source ~n:1) in
  let g = goal net Sf.goal_exhausted in
  match Fmea.analyze net ~goal:g with
  | Error e -> Alcotest.fail e
  | Ok rows ->
    List.iter
      (fun (r : Fmea.row) ->
        Alcotest.(check bool)
          (r.component ^ " is a single point of failure at n=1")
          true r.leads_to_failure)
      rows

(* --- FDIR --- *)

let test_fdir_gps () =
  let net = load Slimsim_models.Gps.source in
  match Fdir.analyze ~settle_time:150.0 net ~observables:[ "gps.measurement" ] with
  | Error e -> Alcotest.fail e
  | Ok verdicts ->
    Alcotest.(check int) "three failure modes" 3 (List.length verdicts);
    let by_label frag =
      List.find
        (fun (v : Fdir.verdict) ->
          Astring_contains.contains v.event.Cutsets.be_label frag)
        verdicts
    in
    List.iter
      (fun (v : Fdir.verdict) ->
        Alcotest.(check bool) "every fault is detected" true v.detected;
        (* all three faults have the same signature: indistinguishable *)
        Alcotest.(check bool) "faults are not isolable" false v.isolated)
      verdicts;
    Alcotest.(check bool) "hot fault recovers by restart" true
      (by_label "hot").Fdir.recovered;
    Alcotest.(check bool) "transient fault recovers (self-heal in settle)" true
      (by_label "transient").Fdir.recovered;
    Alcotest.(check bool) "permanent fault does not recover" false
      (by_label "dead").Fdir.recovered

let test_fdir_isolation () =
  (* distinct observables per component make the faults isolable *)
  let net = load (Sf.source ~n:2) in
  match
    Fdir.analyze net
      ~observables:
        [ "sensors.s1.value"; "sensors.s2.value"; "filters.f1.value"; "filters.f2.value" ]
  with
  | Error e -> Alcotest.fail e
  | Ok verdicts ->
    List.iter
      (fun (v : Fdir.verdict) ->
        Alcotest.(check bool) "detected" true v.detected;
        Alcotest.(check bool) "isolated by its own port" true v.isolated;
        (* no reset machinery in this model: nothing recovers *)
        Alcotest.(check bool) "no recovery without resets" false v.recovered)
      verdicts

let test_fdir_unknown_observable () =
  let net = load (Sf.source ~n:1) in
  match Fdir.analyze net ~observables:[ "bogus.port" ] with
  | Error e ->
    Alcotest.(check bool) "mentions the name" true
      (Astring_contains.contains e "bogus.port")
  | Ok _ -> Alcotest.fail "expected an error"

(* --- diagnosability --- *)

let test_diagnosable_with_rich_observables () =
  let net = load (Sf.source ~n:2) in
  let diagnosis = goal net "sensors.s1 in mode failed" in
  match
    Slimsim_safety.Diagnosability.check net
      ~observables:
        [ "sensors.s1.value"; "sensors.s2.value"; "filters.f1.value"; "filters.f2.value" ]
      ~diagnosis
  with
  | Error e -> Alcotest.fail e
  | Ok r ->
    Alcotest.(check bool) "diagnosable" true r.Slimsim_safety.Diagnosability.diagnosable;
    Alcotest.(check int) "no ambiguities" 0
      (List.length r.Slimsim_safety.Diagnosability.ambiguities)

let test_not_diagnosable_with_shared_observable () =
  (* the GPS fault types all look the same through one observable *)
  let net = load Slimsim_models.Gps.source in
  let diagnosis = goal net "gps in mode hot" in
  match
    Slimsim_safety.Diagnosability.check net ~observables:[ "gps.measurement" ]
      ~diagnosis
  with
  | Error e -> Alcotest.fail e
  | Ok r ->
    Alcotest.(check bool) "not diagnosable" false
      r.Slimsim_safety.Diagnosability.diagnosable;
    Alcotest.(check bool) "an ambiguity is reported" true
      (r.Slimsim_safety.Diagnosability.ambiguities <> [])

let test_diagnosability_unknown_observable () =
  let net = load (Sf.source ~n:1) in
  let diagnosis = goal net "true" in
  Alcotest.(check bool) "unknown observable rejected" true
    (Result.is_error
       (Slimsim_safety.Diagnosability.check net ~observables:[ "zz" ] ~diagnosis))

(* --- dot export --- *)

let test_dot_automaton () =
  let net = load Slimsim_models.Gps.source in
  let p = Option.get (Slimsim_sta.Network.find_proc net "gps#GPSFail") in
  let dot = Slimsim_sta.Dot.automaton net p in
  List.iter
    (fun frag ->
      Alcotest.(check bool) ("contains " ^ frag) true
        (Astring_contains.contains dot frag))
    [ "digraph"; "transient"; "rate 0.01"; "reset:gps"; "init ->" ]

let test_dot_network () =
  let net = load Slimsim_models.Gps.source in
  let dot = Slimsim_sta.Dot.network net in
  List.iter
    (fun frag ->
      Alcotest.(check bool) ("contains " ^ frag) true
        (Astring_contains.contains dot frag))
    [ "digraph network"; "gps#GPSFail"; "main" ]

let suite =
  [
    Alcotest.test_case "basic events" `Quick test_basic_events;
    Alcotest.test_case "sensor-filter cut sets" `Quick test_sensor_filter_cut_sets;
    Alcotest.test_case "top probability = closed form" `Quick
      test_top_probability_matches_closed_form;
    Alcotest.test_case "minimality" `Quick test_minimality;
    Alcotest.test_case "goal true initially" `Quick test_goal_true_initially;
    Alcotest.test_case "unreachable goal" `Quick test_unreachable_goal;
    Alcotest.test_case "fault tree dot export" `Quick test_fault_tree_dot;
    Alcotest.test_case "fmea rows" `Quick test_fmea_rows;
    Alcotest.test_case "fmea single point of failure" `Quick
      test_fmea_single_point_of_failure;
    Alcotest.test_case "fdir on the gps" `Quick test_fdir_gps;
    Alcotest.test_case "fdir isolation" `Quick test_fdir_isolation;
    Alcotest.test_case "fdir unknown observable" `Quick test_fdir_unknown_observable;
    Alcotest.test_case "diagnosable with rich observables" `Quick
      test_diagnosable_with_rich_observables;
    Alcotest.test_case "not diagnosable through one observable" `Quick
      test_not_diagnosable_with_shared_observable;
    Alcotest.test_case "diagnosability unknown observable" `Quick
      test_diagnosability_unknown_observable;
    Alcotest.test_case "dot automaton" `Quick test_dot_automaton;
    Alcotest.test_case "dot network" `Quick test_dot_network;
  ]
