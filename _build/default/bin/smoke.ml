(* Scratch end-to-end exercise of the pipeline; superseded by the test
   suite but kept as a fast sanity binary. *)

module Loader = Slimsim_slim.Loader
module Network = Slimsim_sta.Network
module Engine = Slimsim_sim.Engine
module Strategy = Slimsim_sim.Strategy
module Path = Slimsim_sim.Path
module Rng = Slimsim_stats.Rng

let () =
  (* 1. nominal GPS *)
  (match Loader.load_string Slimsim_models.Gps.nominal_only with
  | Error e -> failwith ("nominal load failed: " ^ e)
  | Ok { network; _ } ->
    Fmt.pr "nominal: %a@." Network.pp_summary network;
    let goal =
      match Loader.parse_goal network Slimsim_models.Gps.goal_acquired with
      | Ok g -> g
      | Error e -> failwith e
    in
    List.iter
      (fun strat ->
        let cfg = Path.default_config ~horizon:200.0 in
        let rng = Rng.for_path ~seed:42L ~path:0 in
        let v, _ = Path.generate network cfg strat rng ~goal in
        Fmt.pr "  %-12s -> %s@."
          (Strategy.to_string strat)
          (match v with
          | Ok v -> Path.verdict_to_string v
          | Error e -> Path.error_to_string e))
      Strategy.all_automated);
  (* 2. full GPS with faults, supervisor and injection *)
  match Loader.load_string Slimsim_models.Gps.source with
  | Error e -> failwith ("full load failed: " ^ e)
  | Ok { network; _ } ->
    Fmt.pr "full: %a@." Network.pp_summary network;
    let goal =
      match Loader.parse_goal network Slimsim_models.Gps.goal_no_fix with
      | Ok g -> g
      | Error e -> failwith e
    in
    List.iter
      (fun strat ->
        match
          Engine.estimate network ~goal ~horizon:300.0 ~strategy:strat
            ~delta:0.05 ~eps:0.05 ()
        with
        | Ok r -> Fmt.pr "  %-12s %a@." (Strategy.to_string strat) Engine.pp_result r
        | Error e ->
          Fmt.pr "  %-12s ERROR %s@." (Strategy.to_string strat)
            (Path.error_to_string e))
      Strategy.all_automated

(* 3. sensor-filter: CTMC pipeline vs simulator vs closed form *)
module Analysis = Slimsim_ctmc.Analysis
module Sf = Slimsim_models.Sensor_filter

let () =
  let n = 2 in
  let horizon = 1800.0 in
  match Loader.load_string (Sf.source ~n) with
  | Error e -> failwith ("sensor-filter load failed: " ^ e)
  | Ok { network; _ } ->
    Fmt.pr "sensor-filter n=%d: %a@." n Network.pp_summary network;
    let goal =
      match Loader.parse_goal network (Sf.goal_all_failed ~n) with
      | Ok g -> g
      | Error e -> failwith e
    in
    Fmt.pr "  closed form: %.6f@." (Sf.closed_form ~n ~horizon);
    (match Analysis.check network ~goal ~horizon with
    | Ok r -> Fmt.pr "  ctmc:        %a@." Analysis.pp_report r
    | Error e -> Fmt.pr "  ctmc ERROR: %s@." e);
    (match
       Engine.estimate network ~goal ~horizon ~strategy:Strategy.Asap
         ~delta:0.05 ~eps:0.01 ()
     with
    | Ok r -> Fmt.pr "  sim(asap):   %a@." Engine.pp_result r
    | Error e -> Fmt.pr "  sim ERROR: %s@." (Path.error_to_string e))

(* 4. launcher, both variants, quick run *)
module Launcher = Slimsim_models.Launcher

let () =
  List.iter
    (fun (label, variant) ->
      match Loader.load_string (Launcher.source ~variant) with
      | Error e -> failwith ("launcher load failed: " ^ e)
      | Ok { network; _ } ->
        Fmt.pr "launcher (%s): %a@." label Network.pp_summary network;
        let goal =
          match Loader.parse_goal network Launcher.goal_failure with
          | Ok g -> g
          | Error e -> failwith e
        in
        List.iter
          (fun strat ->
            match
              Engine.estimate network ~goal ~horizon:60.0 ~strategy:strat
                ~delta:0.1 ~eps:0.1 ()
            with
            | Ok r ->
              Fmt.pr "  %-12s %a@." (Strategy.to_string strat) Engine.pp_result r
            | Error e ->
              Fmt.pr "  %-12s ERROR %s@." (Strategy.to_string strat)
                (Path.error_to_string e))
          Strategy.all_automated)
    [ ("permanent", `Permanent); ("recoverable", `Recoverable) ]
