let () =
  let w name s = Out_channel.with_open_text name (fun oc -> output_string oc s) in
  w "examples/models/gps.slim" Slimsim_models.Gps.source;
  w "examples/models/gps_nominal.slim" Slimsim_models.Gps.nominal_only;
  w "examples/models/sensor_filter_2.slim" (Slimsim_models.Sensor_filter.source ~n:2);
  w "examples/models/sensor_filter_4.slim" (Slimsim_models.Sensor_filter.source ~n:4);
  w "examples/models/launcher_permanent.slim" (Slimsim_models.Launcher.source ~variant:`Permanent);
  w "examples/models/launcher_recoverable.slim" (Slimsim_models.Launcher.source ~variant:`Recoverable);
  w "examples/models/sensor_filter_2_timed.slim" (Slimsim_models.Sensor_filter.timed_source ~n:2);
  w "examples/models/mm1k.slim" (Slimsim_models.Queue_model.source ~arrival:0.8 ~service:1.0 ~capacity:4)
