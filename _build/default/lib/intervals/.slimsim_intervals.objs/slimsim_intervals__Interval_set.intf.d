lib/intervals/interval_set.mli: Format
