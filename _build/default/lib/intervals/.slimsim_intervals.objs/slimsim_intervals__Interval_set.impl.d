lib/intervals/interval_set.ml: Fmt List
