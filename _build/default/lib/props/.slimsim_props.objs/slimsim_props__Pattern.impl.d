lib/props/pattern.ml: Printf Slimsim_slim Slimsim_sta String
