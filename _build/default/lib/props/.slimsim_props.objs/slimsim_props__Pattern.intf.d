lib/props/pattern.mli: Slimsim_sta
