(** Runtime values of SLIM data components: Booleans, (bounded) integers
    and reals.  Clocks and continuous variables hold [Real] values. *)

type t = Bool of bool | Int of int | Real of float

exception Type_error of string

val equal : t -> t -> bool
val compare_num : t -> t -> int
(** Numeric comparison with [Int]/[Real] promotion; [Type_error] on
    Booleans mixed with numbers. *)

val as_bool : t -> bool
val as_float : t -> float
(** Numeric coercion: [Int n -> float n]; [Type_error] on [Bool]. *)

val is_numeric : t -> bool

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** Arithmetic with promotion; [Int / Int] is integer division (SLIM
    integer semantics); [Type_error] on Booleans. *)

val modulo : t -> t -> t
val neg : t -> t
val min_v : t -> t -> t
val max_v : t -> t -> t
val pp : Format.formatter -> t -> unit
val to_string : t -> string
