(** Global states of a network: one location per process, a valuation of
    all variables, and the elapsed global time.  States are immutable;
    transitions produce fresh states. *)

type t = {
  locs : int array;
  vals : Value.t array;
  time : float;
}

val initial : Network.t -> t
(** Initial locations and initial values, with data flows applied. *)

val env : t -> int -> Value.t
val at_loc : t -> int -> int -> bool
val eval : t -> Expr.t -> Value.t
val eval_bool : t -> Expr.t -> bool

val proc_active : Network.t -> t -> int -> bool
(** Dynamic reconfiguration: whether the process's activation condition
    holds in this state. *)

val rate_array : Network.t -> t -> float array
(** Current derivative of every variable: clocks tick at 1 and continuous
    variables follow their location's derivative while the owning process
    is active; everything else (and every variable of an inactive
    process) has derivative 0. *)

val advance : Network.t -> ?rates:float array -> t -> float -> t
(** Timed transition: let [d] time units pass. *)

val apply_updates : t -> (int * Expr.t) list -> t
(** Discrete effects, applied left-to-right. *)

val apply_flows : Network.t -> t -> t
(** Recompute all data-port flows (already in dependency order). *)

val set_loc : t -> proc:int -> loc:int -> t

val restart_proc : Network.t -> t -> int -> t
(** Reset a process to its initial location and its owned variables to
    their initial values (used by [Restart] reactivation and [reset]
    effects). *)

val hash_key : t -> int array * Value.t array
(** Timeless key for explicit-state exploration. *)

val equal_timeless : t -> t -> bool
val pp : Network.t -> Format.formatter -> t -> unit
