(** Expressions over network variables, used for guards, invariants,
    effects, data flows and property goals.

    Variables are indices into the network-wide valuation.  The [Loc]
    atom ("process p is in location l") never occurs in guards produced
    by translation — a process can just test its own mode structurally —
    but is needed for property goals and activation conditions. *)

type unop = Neg | Not

type binop =
  | Add | Sub | Mul | Div | Mod
  | And | Or | Implies
  | Eq | Neq | Lt | Le | Gt | Ge
  | Min | Max

type t =
  | Const of Value.t
  | Var of int
  | Loc of int * int  (** [Loc (proc, loc)]: process [proc] is at [loc] *)
  | Unop of unop * t
  | Binop of binop * t * t
  | Ite of t * t * t

val true_ : t
val false_ : t
val bool : bool -> t
val int : int -> t
val real : float -> t
val var : int -> t

val and_ : t -> t -> t
(** Conjunction with constant folding ([true_] is the unit). *)

val or_ : t -> t -> t
val not_ : t -> t

val eval : env:(int -> Value.t) -> at_loc:(int -> int -> bool) -> t -> Value.t
(** Evaluate under a valuation [env] and location predicate [at_loc].
    Raises [Value.Type_error] on ill-typed operands. *)

val eval_bool : env:(int -> Value.t) -> at_loc:(int -> int -> bool) -> t -> bool

val free_vars : t -> int list
(** Sorted, de-duplicated variable indices read by the expression. *)

val map_vars : (int -> int) -> t -> t
(** Renumber variables (used when splicing expressions between index
    spaces). *)

val subst : (int -> t option) -> t -> t
(** Replace [Var v] by the image expression when defined. *)

val pp : names:(int -> string) -> Format.formatter -> t -> unit
val to_string : names:(int -> string) -> t -> string
