module I = Slimsim_intervals.Interval_set

type move =
  | Local of { proc : int; tr : int }
  | Sync of { event : int; parts : (int * int) list }

type timed = { move : move; window : I.t }

let nonneg = I.at_least 0.0

let sat net state rates e =
  ignore net;
  Linear.sat_set ~env:(State.env state) ~rate:(fun v -> rates.(v))
    ~at_loc:(State.at_loc state) e

let invariant_window ?rates (net : Network.t) state =
  let rates = match rates with Some r -> r | None -> State.rate_array net state in
  let inv_set =
    Array.to_list net.procs
    |> List.mapi (fun p proc -> (p, proc))
    |> List.fold_left
         (fun acc (p, (proc : Automaton.t)) ->
           if State.proc_active net state p then
             I.inter acc (sat net state rates proc.locations.(state.locs.(p)).invariant)
           else acc)
         I.full
  in
  match I.component_at 0.0 (I.inter inv_set nonneg) with
  | None -> I.empty
  | Some iv -> I.make iv.I.lo iv.I.hi

(* Per-process candidates on event [e] from the current location. *)
let event_candidates (net : Network.t) state rates inv_win p e =
  let proc = net.procs.(p) in
  List.filter_map
    (fun ti ->
      let tr = proc.Automaton.transitions.(ti) in
      match tr.label, tr.guard with
      | Automaton.Event e', Automaton.Guard g when e' = e ->
        let w = I.inter inv_win (sat net state rates g) in
        if I.is_empty w then None else Some (ti, w)
      | _ -> None)
    proc.Automaton.outgoing.(state.State.locs.(p))

let rec cartesian = function
  | [] -> [ [] ]
  | choices :: rest ->
    let tails = cartesian rest in
    List.concat_map (fun c -> List.map (fun t -> c :: t) tails) choices

let discrete ?rates ?inv_win (net : Network.t) state =
  let rates = match rates with Some r -> r | None -> State.rate_array net state in
  let inv_win =
    match inv_win with Some w -> w | None -> invariant_window ~rates net state
  in
  if I.is_empty inv_win then []
  else begin
    let moves = ref [] in
    (* Local τ moves. *)
    Array.iteri
      (fun p (proc : Automaton.t) ->
        if State.proc_active net state p then
          List.iter
            (fun ti ->
              let tr = proc.transitions.(ti) in
              match tr.label, tr.guard with
              | Automaton.Tau, Automaton.Guard g ->
                let w = I.inter inv_win (sat net state rates g) in
                if not (I.is_empty w) then
                  moves := { move = Local { proc = p; tr = ti }; window = w } :: !moves
              | _ -> ())
            proc.outgoing.(state.State.locs.(p)))
      net.procs;
    (* Multiway synchronizations: every active participant must offer a
       transition; inactive processes do not block (they are detached by
       dynamic reconfiguration). *)
    Array.iteri
      (fun e parts ->
        let active_parts = List.filter (State.proc_active net state) parts in
        if active_parts <> [] then begin
          let per_proc =
            List.map
              (fun p -> (p, event_candidates net state rates inv_win p e))
              active_parts
          in
          if List.for_all (fun (_, cs) -> cs <> []) per_proc then
            let combos =
              cartesian
                (List.map (fun (p, cs) -> List.map (fun c -> (p, c)) cs) per_proc)
            in
            List.iter
              (fun combo ->
                let w =
                  List.fold_left (fun acc (_, (_, wi)) -> I.inter acc wi) inv_win combo
                in
                if not (I.is_empty w) then
                  let parts = List.map (fun (p, (ti, _)) -> (p, ti)) combo in
                  moves := { move = Sync { event = e; parts }; window = w } :: !moves)
              combos
        end)
      net.participants;
    List.rev !moves
  end

let markovian (net : Network.t) state =
  let out = ref [] in
  Array.iteri
    (fun p (proc : Automaton.t) ->
      if State.proc_active net state p then
        List.iter
          (fun ti ->
            match proc.transitions.(ti).guard with
            | Automaton.Rate r -> out := (p, ti, r) :: !out
            | Automaton.Guard _ -> ())
          proc.outgoing.(state.State.locs.(p)))
    net.procs;
  List.rev !out

let invariants_hold (net : Network.t) state =
  let ok = ref true in
  Array.iteri
    (fun p (proc : Automaton.t) ->
      if
        !ok
        && State.proc_active net state p
        && not (State.eval_bool state proc.locations.(state.State.locs.(p)).invariant)
      then ok := false)
    net.procs;
  !ok

let apply (net : Network.t) state ?(delay = 0.0) move =
  let state = State.advance net state delay in
  let was_active = Array.init (Network.n_procs net) (State.proc_active net state) in
  let parts =
    match move with
    | Local { proc; tr } -> [ (proc, tr) ]
    | Sync { parts; _ } -> parts
  in
  (* Updates first (they read the pre-jump valuation at the fire time),
     then the location switches. *)
  let state =
    List.fold_left
      (fun st (p, ti) ->
        State.apply_updates st net.procs.(p).Automaton.transitions.(ti).updates)
      state parts
  in
  let state =
    List.fold_left
      (fun st (p, ti) ->
        State.set_loc st ~proc:p ~loc:net.procs.(p).Automaton.transitions.(ti).dst)
      state parts
  in
  let state = State.apply_flows net state in
  (* Dynamic reconfiguration: restart processes that just became active
     under a Restart policy. *)
  let state = ref state in
  Array.iteri
    (fun p meta ->
      if
        (not was_active.(p))
        && State.proc_active net !state p
        && meta.Network.reactivation = Network.Restart
      then state := State.restart_proc net !state p)
    net.meta;
  State.apply_flows net !state

let enabled_after net state d timed_moves =
  List.filter_map
    (fun { move; window } ->
      if I.mem d window && invariants_hold net (apply net state ~delay:d move) then
        Some move
      else None)
    timed_moves

let describe (net : Network.t) = function
  | Local { proc; tr } ->
    let p = net.procs.(proc) in
    let t = p.Automaton.transitions.(tr) in
    Fmt.str "%s: %s -> %s%s" p.proc_name
      p.locations.(t.src).loc_name p.locations.(t.dst).loc_name
      (match t.guard with
      | Automaton.Rate r -> Fmt.str " (rate %g)" r
      | Automaton.Guard _ -> "")
  | Sync { event; parts } ->
    Fmt.str "sync %s [%s]" net.events.(event)
      (String.concat "; "
         (List.map
            (fun (p, ti) ->
              let proc = net.procs.(p) in
              let t = proc.Automaton.transitions.(ti) in
              Fmt.str "%s: %s -> %s" proc.proc_name
                proc.locations.(t.src).loc_name proc.locations.(t.dst).loc_name)
            parts))
