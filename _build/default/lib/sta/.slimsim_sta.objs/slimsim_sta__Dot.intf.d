lib/sta/dot.mli: Network
