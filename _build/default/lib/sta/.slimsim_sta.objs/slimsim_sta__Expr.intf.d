lib/sta/expr.mli: Format Value
