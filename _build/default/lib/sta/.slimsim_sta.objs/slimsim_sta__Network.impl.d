lib/sta/network.ml: Array Automaton Expr Fmt Format Hashtbl List Value
