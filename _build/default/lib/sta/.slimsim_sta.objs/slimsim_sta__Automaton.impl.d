lib/sta/automaton.ml: Array Expr Fmt Format List
