lib/sta/linear.ml: Expr Format Slimsim_intervals Value
