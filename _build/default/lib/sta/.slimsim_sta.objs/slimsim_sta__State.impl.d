lib/sta/state.ml: Array Automaton Expr Fmt List Network Value
