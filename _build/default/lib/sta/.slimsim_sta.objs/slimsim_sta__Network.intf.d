lib/sta/network.mli: Automaton Expr Format Value
