lib/sta/value.ml: Fmt Format
