lib/sta/state.mli: Expr Format Network Value
