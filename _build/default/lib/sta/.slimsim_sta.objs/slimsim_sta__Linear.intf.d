lib/sta/linear.mli: Expr Slimsim_intervals Value
