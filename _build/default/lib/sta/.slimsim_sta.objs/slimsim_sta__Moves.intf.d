lib/sta/moves.mli: Network Slimsim_intervals State
