lib/sta/expr.ml: Fmt List Value
