lib/sta/automaton.mli: Expr Format
