lib/sta/moves.ml: Array Automaton Fmt Linear List Network Slimsim_intervals State String
