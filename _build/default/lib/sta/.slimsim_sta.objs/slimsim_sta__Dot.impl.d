lib/sta/dot.ml: Array Automaton Buffer Expr List Network Printf String
