lib/sta/value.mli: Format
