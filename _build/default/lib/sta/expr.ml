type unop = Neg | Not

type binop =
  | Add | Sub | Mul | Div | Mod
  | And | Or | Implies
  | Eq | Neq | Lt | Le | Gt | Ge
  | Min | Max

type t =
  | Const of Value.t
  | Var of int
  | Loc of int * int
  | Unop of unop * t
  | Binop of binop * t * t
  | Ite of t * t * t

let true_ = Const (Value.Bool true)
let false_ = Const (Value.Bool false)
let bool b = Const (Value.Bool b)
let int n = Const (Value.Int n)
let real x = Const (Value.Real x)
let var v = Var v

let and_ e1 e2 =
  match e1, e2 with
  | Const (Value.Bool true), e | e, Const (Value.Bool true) -> e
  | Const (Value.Bool false), _ | _, Const (Value.Bool false) -> false_
  | _ -> Binop (And, e1, e2)

let or_ e1 e2 =
  match e1, e2 with
  | Const (Value.Bool false), e | e, Const (Value.Bool false) -> e
  | Const (Value.Bool true), _ | _, Const (Value.Bool true) -> true_
  | _ -> Binop (Or, e1, e2)

let not_ = function
  | Const (Value.Bool b) -> bool (not b)
  | Unop (Not, e) -> e
  | e -> Unop (Not, e)

let rec eval ~env ~at_loc e =
  match e with
  | Const v -> v
  | Var v -> env v
  | Loc (p, l) -> Value.Bool (at_loc p l)
  | Unop (Neg, e1) -> Value.neg (eval ~env ~at_loc e1)
  | Unop (Not, e1) -> Value.Bool (not (Value.as_bool (eval ~env ~at_loc e1)))
  | Binop (And, e1, e2) ->
    (* Short-circuit: effects never occur in expressions, so this only
       avoids type errors in the unevaluated branch. *)
    Value.Bool
      (Value.as_bool (eval ~env ~at_loc e1) && Value.as_bool (eval ~env ~at_loc e2))
  | Binop (Or, e1, e2) ->
    Value.Bool
      (Value.as_bool (eval ~env ~at_loc e1) || Value.as_bool (eval ~env ~at_loc e2))
  | Binop (Implies, e1, e2) ->
    Value.Bool
      ((not (Value.as_bool (eval ~env ~at_loc e1)))
      || Value.as_bool (eval ~env ~at_loc e2))
  | Binop (op, e1, e2) -> (
    let v1 = eval ~env ~at_loc e1 and v2 = eval ~env ~at_loc e2 in
    match op with
    | Add -> Value.add v1 v2
    | Sub -> Value.sub v1 v2
    | Mul -> Value.mul v1 v2
    | Div -> Value.div v1 v2
    | Mod -> Value.modulo v1 v2
    | Min -> Value.min_v v1 v2
    | Max -> Value.max_v v1 v2
    | Eq -> Value.Bool (Value.equal v1 v2)
    | Neq -> Value.Bool (not (Value.equal v1 v2))
    | Lt -> Value.Bool (Value.compare_num v1 v2 < 0)
    | Le -> Value.Bool (Value.compare_num v1 v2 <= 0)
    | Gt -> Value.Bool (Value.compare_num v1 v2 > 0)
    | Ge -> Value.Bool (Value.compare_num v1 v2 >= 0)
    | And | Or | Implies -> assert false)
  | Ite (c, e1, e2) ->
    if Value.as_bool (eval ~env ~at_loc c) then eval ~env ~at_loc e1
    else eval ~env ~at_loc e2

let eval_bool ~env ~at_loc e = Value.as_bool (eval ~env ~at_loc e)

let free_vars e =
  let rec go acc = function
    | Const _ | Loc _ -> acc
    | Var v -> v :: acc
    | Unop (_, e1) -> go acc e1
    | Binop (_, e1, e2) -> go (go acc e1) e2
    | Ite (c, e1, e2) -> go (go (go acc c) e1) e2
  in
  List.sort_uniq compare (go [] e)

let rec map_vars f = function
  | Const _ as e -> e
  | Var v -> Var (f v)
  | Loc _ as e -> e
  | Unop (op, e1) -> Unop (op, map_vars f e1)
  | Binop (op, e1, e2) -> Binop (op, map_vars f e1, map_vars f e2)
  | Ite (c, e1, e2) -> Ite (map_vars f c, map_vars f e1, map_vars f e2)

let rec subst f = function
  | Const _ as e -> e
  | Var v as e -> ( match f v with Some e' -> e' | None -> e)
  | Loc _ as e -> e
  | Unop (op, e1) -> Unop (op, subst f e1)
  | Binop (op, e1, e2) -> Binop (op, subst f e1, subst f e2)
  | Ite (c, e1, e2) -> Ite (subst f c, subst f e1, subst f e2)

let binop_symbol = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "mod"
  | And -> "and" | Or -> "or" | Implies -> "=>"
  | Eq -> "=" | Neq -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | Min -> "min" | Max -> "max"

let rec pp ~names ppf = function
  | Const v -> Value.pp ppf v
  | Var v -> Fmt.string ppf (names v)
  | Loc (p, l) -> Fmt.pf ppf "@loc(%d,%d)" p l
  | Unop (Neg, e) -> Fmt.pf ppf "-(%a)" (pp ~names) e
  | Unop (Not, e) -> Fmt.pf ppf "not (%a)" (pp ~names) e
  | Binop ((Min | Max) as op, e1, e2) ->
    Fmt.pf ppf "%s(%a, %a)" (binop_symbol op) (pp ~names) e1 (pp ~names) e2
  | Binop (op, e1, e2) ->
    Fmt.pf ppf "(%a %s %a)" (pp ~names) e1 (binop_symbol op) (pp ~names) e2
  | Ite (c, e1, e2) ->
    Fmt.pf ppf "(if %a then %a else %a)" (pp ~names) c (pp ~names) e1
      (pp ~names) e2

let to_string ~names e = Fmt.str "%a" (pp ~names) e
