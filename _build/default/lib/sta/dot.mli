(** Graphviz export of processes and networks, in the style of the
    paper's Figure 2 (locations with invariants as nodes, transitions
    with guards/rates as edges). *)

val automaton : Network.t -> int -> string
(** Dot source for one process of the network. *)

val network : Network.t -> string
(** Dot source for the network overview: one node per process, one edge
    per shared event connecting its participants, plus data-flow edges
    between processes whose variables feed each other's flows. *)
