type t = { locs : int array; vals : Value.t array; time : float }

let env t v = t.vals.(v)
let at_loc t p l = t.locs.(p) = l
let eval t e = Expr.eval ~env:(env t) ~at_loc:(at_loc t) e
let eval_bool t e = Expr.eval_bool ~env:(env t) ~at_loc:(at_loc t) e

let proc_active (net : Network.t) t p = eval_bool t net.meta.(p).active_when

let apply_flows (net : Network.t) t =
  if Array.length net.flows = 0 then t
  else begin
    let vals = Array.copy t.vals in
    let tmp = { t with vals } in
    Array.iter
      (fun (f : Network.flow) -> vals.(f.target) <- eval tmp f.expr)
      net.flows;
    { t with vals }
  end

let initial (net : Network.t) =
  let locs = Array.map (fun p -> p.Automaton.initial_loc) net.procs in
  let vals = Array.map (fun (v : Network.var_info) -> v.init) net.vars in
  apply_flows net { locs; vals; time = 0.0 }

let rate_array (net : Network.t) t =
  let rates = Array.make (Array.length net.vars) 0.0 in
  Array.iteri
    (fun v (info : Network.var_info) ->
      let active =
        match info.owner with None -> true | Some p -> proc_active net t p
      in
      if active then
        match info.kind with
        | Network.Discrete -> ()
        | Network.Clock -> rates.(v) <- 1.0
        | Network.Continuous -> ())
    net.vars;
  (* Location-specific derivative overrides. *)
  Array.iteri
    (fun p (proc : Automaton.t) ->
      if proc_active net t p then
        List.iter
          (fun (v, r) -> rates.(v) <- r)
          proc.locations.(t.locs.(p)).derivs)
    net.procs;
  rates

let advance net ?rates t d =
  if d = 0.0 then t
  else begin
    let rates = match rates with Some r -> r | None -> rate_array net t in
    let vals = Array.copy t.vals in
    Array.iteri
      (fun v r ->
        if r <> 0.0 then vals.(v) <- Value.Real (Value.as_float vals.(v) +. (r *. d)))
      rates;
    { t with vals; time = t.time +. d }
  end

let apply_updates t updates =
  match updates with
  | [] -> t
  | _ ->
    let vals = Array.copy t.vals in
    let tmp = { t with vals } in
    List.iter (fun (v, e) -> vals.(v) <- eval tmp e) updates;
    { t with vals }

let set_loc t ~proc ~loc =
  let locs = Array.copy t.locs in
  locs.(proc) <- loc;
  { t with locs }

let restart_proc (net : Network.t) t p =
  let locs = Array.copy t.locs in
  locs.(p) <- net.procs.(p).Automaton.initial_loc;
  let vals = Array.copy t.vals in
  List.iter (fun v -> vals.(v) <- net.vars.(v).Network.init) net.meta.(p).owned_vars;
  { t with locs; vals }

let hash_key t = (t.locs, t.vals)

let equal_timeless t1 t2 = t1.locs = t2.locs && t1.vals = t2.vals

let pp (net : Network.t) ppf t =
  Fmt.pf ppf "@[<v>t = %g@," t.time;
  Array.iteri
    (fun p (proc : Automaton.t) ->
      Fmt.pf ppf "%s @ %s%s@," proc.proc_name
        proc.locations.(t.locs.(p)).loc_name
        (if proc_active net t p then "" else " (inactive)"))
    net.procs;
  Array.iteri
    (fun v (info : Network.var_info) ->
      Fmt.pf ppf "%s = %a@," info.var_name Value.pp t.vals.(v))
    net.vars;
  Fmt.pf ppf "@]"
