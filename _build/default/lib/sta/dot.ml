let escape s =
  String.concat ""
    (List.map
       (fun c ->
         match c with
         | '"' -> "\\\""
         | '\\' -> "\\\\"
         | '\n' -> "\\n"
         | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let var_names (net : Network.t) v = net.vars.(v).var_name

let automaton (net : Network.t) p =
  let proc = net.procs.(p) in
  let b = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "digraph %S {\n  rankdir=LR;\n  node [shape=ellipse];\n"
    proc.Automaton.proc_name;
  Array.iteri
    (fun l (loc : Automaton.location) ->
      let inv =
        if loc.invariant = Expr.true_ then ""
        else "\\n" ^ escape (Expr.to_string ~names:(var_names net) loc.invariant)
      in
      pf "  l%d [label=\"%s%s\"%s];\n" l (escape loc.loc_name) inv
        (if l = proc.Automaton.initial_loc then " style=bold" else ""))
    proc.Automaton.locations;
  pf "  init [shape=point];\n  init -> l%d;\n" proc.Automaton.initial_loc;
  Array.iter
    (fun (tr : Automaton.transition) ->
      let label =
        match tr.guard with
        | Automaton.Rate r -> Printf.sprintf "rate %g" r
        | Automaton.Guard g -> (
          let base =
            match tr.label with
            | Automaton.Tau -> ""
            | Automaton.Event e -> escape net.events.(e)
          in
          if g = Expr.true_ then base
          else
            (if base = "" then "" else base ^ "\\n")
            ^ escape (Expr.to_string ~names:(var_names net) g))
      in
      let updates =
        String.concat "; "
          (List.map
             (fun (v, e) ->
               Printf.sprintf "%s := %s" (var_names net v)
                 (Expr.to_string ~names:(var_names net) e))
             tr.updates)
      in
      let label =
        if updates = "" then label
        else if label = "" then escape updates
        else label ^ "\\n/ " ^ escape updates
      in
      pf "  l%d -> l%d [label=\"%s\"];\n" tr.src tr.dst label)
    proc.Automaton.transitions;
  pf "}\n";
  Buffer.contents b

let network (net : Network.t) =
  let b = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "digraph network {\n  node [shape=box];\n";
  Array.iteri
    (fun p (proc : Automaton.t) ->
      pf "  p%d [label=\"%s\\n%d locations\"];\n" p (escape proc.proc_name)
        (Array.length proc.locations))
    net.procs;
  (* synchronization edges *)
  Array.iteri
    (fun e parts ->
      match parts with
      | [] | [ _ ] -> ()
      | first :: rest ->
        List.iter
          (fun p ->
            pf "  p%d -> p%d [label=\"%s\" dir=none style=dashed];\n" first p
              (escape net.events.(e)))
          rest)
    net.participants;
  (* data-flow edges: a flow whose target is owned by one process and
     reads a variable owned by another *)
  Array.iter
    (fun (f : Network.flow) ->
      match net.vars.(f.target).owner with
      | None -> ()
      | Some dst ->
        List.iter
          (fun v ->
            match net.vars.(v).owner with
            | Some src when src <> dst ->
              pf "  p%d -> p%d [color=gray];\n" src dst
            | _ -> ())
          (Expr.free_vars f.expr))
    net.flows;
  pf "}\n";
  Buffer.contents b
