type t = Bool of bool | Int of int | Real of float

exception Type_error of string

let type_error fmt = Format.kasprintf (fun s -> raise (Type_error s)) fmt

let equal v1 v2 =
  match v1, v2 with
  | Bool b1, Bool b2 -> b1 = b2
  | Int n1, Int n2 -> n1 = n2
  | Real x1, Real x2 -> x1 = x2
  | Int n, Real x | Real x, Int n -> float_of_int n = x
  | Bool _, _ | _, Bool _ -> false

let as_bool = function
  | Bool b -> b
  | v -> type_error "expected a Boolean, got %s" (match v with Int _ -> "an integer" | Real _ -> "a real" | Bool _ -> assert false)

let as_float = function
  | Int n -> float_of_int n
  | Real x -> x
  | Bool _ -> type_error "expected a number, got a Boolean"

let is_numeric = function Int _ | Real _ -> true | Bool _ -> false

let compare_num v1 v2 =
  match v1, v2 with
  | Int n1, Int n2 -> compare n1 n2
  | _ -> compare (as_float v1) (as_float v2)

let arith name int_op float_op v1 v2 =
  match v1, v2 with
  | Int n1, Int n2 -> Int (int_op n1 n2)
  | (Int _ | Real _), (Int _ | Real _) -> Real (float_op (as_float v1) (as_float v2))
  | Bool _, _ | _, Bool _ -> type_error "%s applied to a Boolean" name

let add = arith "+" ( + ) ( +. )
let sub = arith "-" ( - ) ( -. )
let mul = arith "*" ( * ) ( *. )

let div v1 v2 =
  match v1, v2 with
  | Int _, Int 0 -> type_error "integer division by zero"
  | Int n1, Int n2 -> Int (n1 / n2)
  | (Int _ | Real _), (Int _ | Real _) ->
    let d = as_float v2 in
    if d = 0.0 then type_error "division by zero" else Real (as_float v1 /. d)
  | Bool _, _ | _, Bool _ -> type_error "/ applied to a Boolean"

let modulo v1 v2 =
  match v1, v2 with
  | Int _, Int 0 -> type_error "modulo by zero"
  | Int n1, Int n2 -> Int (n1 mod n2)
  | _ -> type_error "mod requires integer operands"

let neg = function
  | Int n -> Int (-n)
  | Real x -> Real (-.x)
  | Bool _ -> type_error "negation applied to a Boolean"

let min_v v1 v2 = if compare_num v1 v2 <= 0 then v1 else v2
let max_v v1 v2 = if compare_num v1 v2 >= 0 then v1 else v2

let pp ppf = function
  | Bool b -> Fmt.bool ppf b
  | Int n -> Fmt.int ppf n
  | Real x -> Fmt.pf ppf "%g" x

let to_string v = Fmt.str "%a" pp v
