(** Enumeration of the global moves available in a state, together with
    the delay windows at which each move is enabled, and the execution of
    a chosen move.  This module realizes the product semantics of §II-E:
    internal (τ) moves of a single process, multiway synchronizations on
    shared events, and Markovian (rate) moves. *)

module I = Slimsim_intervals.Interval_set

type move =
  | Local of { proc : int; tr : int }
      (** a τ-labelled guarded transition, or a rate transition *)
  | Sync of { event : int; parts : (int * int) list }
      (** one (process, transition) pair per synchronizing participant *)

type timed = { move : move; window : I.t }
(** A guarded move and the delays [d >= 0] at which it can fire: the
    guard(s) hold after [d] and all invariants hold throughout [[0, d]]. *)

val invariant_window : ?rates:float array -> Network.t -> State.t -> I.t
(** Admissible delays: the connected component at 0 of the intersection
    of all active processes' invariant satisfaction sets (within
    [[0, +inf)]).  Empty iff some invariant is already violated. *)

val discrete : ?rates:float array -> ?inv_win:I.t -> Network.t -> State.t -> timed list
(** All guarded moves with non-empty windows.  Windows account for
    source-side guards and global invariants; the target locations'
    invariants are checked at execution time by {!enabled_after}. *)

val markovian : Network.t -> State.t -> (int * int * float) list
(** Rate transitions available now: (process, transition, rate). *)

val apply : Network.t -> State.t -> ?delay:float -> move -> State.t
(** Execute the move after letting [delay] pass (default 0): advance
    time, apply participant updates left-to-right in participant order,
    switch locations, recompute data flows, and perform reactivation
    restarts for processes whose activation condition became true. *)

val invariants_hold : Network.t -> State.t -> bool
(** All active processes' invariants hold in the state. *)

val enabled_after : Network.t -> State.t -> float -> timed list -> move list
(** The moves of [timed] whose window contains the given delay and whose
    execution lands in a state satisfying all invariants. *)

val describe : Network.t -> move -> string
