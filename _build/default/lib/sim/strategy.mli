(** Resolution of non-determinism (§III-B).

    Where the specification underspecifies what happens next — several
    transitions enabled, or an interval of admissible delays — a strategy
    decides.  Discrete underspecification is always resolved
    equiprobably; strategies differ in how they schedule *time*:

    - {b ASAP}: fire at the first possible time point (the "urgent"
      semantics of MODES).
    - {b Progressive}: pick uniformly from the exact union of intervals
      in which some discrete transition is enabled (UPPAAL-SMC-like).
    - {b Local}: ignore the guards and pick uniformly from the delays the
      current locations' invariants admit.
    - {b MaxTime}: delay as long as the invariants allow — useful for
      finding actionlocks.
    - {b Scripted}: the paper's interactive Input strategy, driven by a
      callback instead of a terminal so it can be tested offline. *)

module I = Slimsim_intervals.Interval_set

type alternatives = {
  step : int;
  state : Slimsim_sta.State.t;
  inv_window : I.t;  (** admissible delays *)
  timed : Slimsim_sta.Moves.timed list;  (** guarded moves and windows *)
  markov : (int * int * float) list;  (** rate transitions available *)
}

type choice =
  | Fire of { index : int; delay : float }
      (** fire [List.nth timed index] after [delay] *)
  | Fire_markov of { index : int; delay : float }
      (** fire [List.nth markov index] after [delay] *)
  | Advance of float  (** let time pass without firing *)
  | Abort  (** give up on this path (reported as an error) *)

type script = alternatives -> choice

type t =
  | Asap
  | Progressive
  | Local
  | Max_time
  | Scripted of script

val to_string : t -> string
val of_string : string -> (t, string) result
(** Parses the four automated strategies (the Input strategy needs a
    script and cannot be named on a command line). *)

val all_automated : t list
