module Rng = Slimsim_stats.Rng
module Generator = Slimsim_stats.Generator
module Estimator = Slimsim_stats.Estimator

type result = {
  probability : float;
  ci_low : float;
  ci_high : float;
  paths : int;
  successes : int;
  deadlock_paths : int;
  errors : int;
  wall_seconds : float;
}

type tally = { mutable deadlocks : int }

let feed_outcome gen tally v =
  (match v with
  | Path.Unsat_deadlock | Path.Unsat_timelock -> tally.deadlocks <- tally.deadlocks + 1
  | Path.Sat _ | Path.Unsat_horizon | Path.Unsat_violated _ -> ());
  Generator.feed gen (match v with Path.Sat _ -> true | _ -> false)

let finish gen tally wall =
  let est = Generator.estimator gen in
  let lo, hi = Estimator.confidence_interval est ~delta:(Generator.delta gen) in
  {
    probability = Estimator.mean est;
    ci_low = lo;
    ci_high = hi;
    paths = Estimator.trials est;
    successes = Estimator.successes est;
    deadlock_paths = tally.deadlocks;
    errors = 0;
    wall_seconds = wall;
  }

let run_sequential ~seed ~hold cfg net ~goal ~strategy ~generator =
  let tally = { deadlocks = 0 } in
  let t0 = Unix.gettimeofday () in
  let rec go i =
    if not (Generator.needs_more generator) then
      Ok (finish generator tally (Unix.gettimeofday () -. t0))
    else
      let rng = Rng.for_path ~seed ~path:i in
      match fst (Path.generate ~hold net cfg strategy rng ~goal) with
      | Ok v ->
        feed_outcome generator tally v;
        go (i + 1)
      | Error e -> Error e
  in
  go 0

(* Parallel engine (§III-C).  Worker [w] simulates paths w, w+k, w+2k, …
   into its own buffer; the collector consumes buffers in cyclic worker
   order, i.e. in path order 0, 1, 2, …  This implements the buffered
   balanced collection of [22] — the sample stream seen by the
   (possibly sequential) statistical generator is a deterministic
   function of the seed, independent of scheduling and of [k]. *)
let run_parallel ~workers:k ~seed ~hold cfg net ~goal ~strategy ~generator =
  let t0 = Unix.gettimeofday () in
  let tally = { deadlocks = 0 } in
  let stop = Atomic.make false in
  let mutex = Mutex.create () in
  let cond = Condition.create () in
  let queues = Array.init k (fun _ -> Queue.create ()) in
  let max_buffer = 256 in
  let limit = Generator.planned_samples generator in
  let worker w () =
    let rec go id =
      let exhausted = match limit with Some n -> id >= n | None -> false in
      if exhausted || Atomic.get stop then ()
      else begin
        let rng = Rng.for_path ~seed ~path:id in
        let outcome = fst (Path.generate ~hold net cfg strategy rng ~goal) in
        Mutex.lock mutex;
        while Queue.length queues.(w) >= max_buffer && not (Atomic.get stop) do
          Condition.wait cond mutex
        done;
        if not (Atomic.get stop) then Queue.push outcome queues.(w);
        Condition.broadcast cond;
        Mutex.unlock mutex;
        go (id + k)
      end
    in
    go w
  in
  let domains = Array.init k (fun w -> Domain.spawn (worker w)) in
  let next = ref 0 in
  let failure = ref None in
  let running = ref true in
  while !running do
    if not (Generator.needs_more generator) then begin
      Mutex.lock mutex;
      Atomic.set stop true;
      Condition.broadcast cond;
      Mutex.unlock mutex;
      running := false
    end
    else begin
      Mutex.lock mutex;
      while Queue.is_empty queues.(!next) && not (Atomic.get stop) do
        Condition.wait cond mutex
      done;
      let sample =
        if Queue.is_empty queues.(!next) then None
        else Some (Queue.pop queues.(!next))
      in
      Condition.broadcast cond;
      Mutex.unlock mutex;
      match sample with
      | None -> running := false
      | Some (Ok v) ->
        feed_outcome generator tally v;
        next := (!next + 1) mod k
      | Some (Error e) ->
        failure := Some e;
        Mutex.lock mutex;
        Atomic.set stop true;
        Condition.broadcast cond;
        Mutex.unlock mutex;
        running := false
    end
  done;
  Array.iter Domain.join domains;
  match !failure with
  | Some e -> Error e
  | None -> Ok (finish generator tally (Unix.gettimeofday () -. t0))

let run ?(workers = 1) ?(seed = 0x51135113L) ?config
    ?(hold = Slimsim_sta.Expr.true_) net ~goal ~horizon ~strategy ~generator () =
  let cfg =
    match config with
    | Some c -> { c with Path.horizon }
    | None -> Path.default_config ~horizon
  in
  if workers <= 1 then run_sequential ~seed ~hold cfg net ~goal ~strategy ~generator
  else
    match strategy with
    | Strategy.Scripted _ ->
      Error (Path.Model_error "scripted strategies require workers = 1")
    | _ -> run_parallel ~workers ~seed ~hold cfg net ~goal ~strategy ~generator

let estimate ?workers ?seed ?config ?hold net ~goal ~horizon ~strategy ~delta ~eps
    () =
  let generator = Generator.create Generator.Chernoff ~delta ~eps in
  run ?workers ?seed ?config ?hold net ~goal ~horizon ~strategy ~generator ()

let pp_result ppf r =
  Fmt.pf ppf
    "p = %.6f  [%.6f, %.6f]  (%d/%d paths, %d dead/timelocked, %.2fs)"
    r.probability r.ci_low r.ci_high r.successes r.paths r.deadlock_paths
    r.wall_seconds
