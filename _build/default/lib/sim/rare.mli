(** Rare-event estimation by importance sampling (the technique family
    surveyed in the paper's related work, §VI).

    Ordinary Monte Carlo needs on the order of [1/p] paths to see a
    single success when [P(<> [0,u] goal) = p] is tiny.  Failure biasing
    multiplies every exponential rate by a factor [bias > 1], making
    faults (and so the goal) frequent under the biased measure; each
    path is weighted by its likelihood ratio so the weighted indicator
    remains unbiased.  Confidence intervals come from the CLT (the
    Chernoff–Hoeffding bound does not apply to unbounded weights), so
    a fixed number of paths is drawn and the achieved relative error is
    reported instead of being prescribed.

    [bias_of proc tr] biases transitions selectively (and then [bias] is
    ignored for transitions it covers) — bias the failure/arrival rates
    up and leave repair/service rates alone; scaling everything by the
    same factor leaves the embedded jump chain unchanged and only blows
    up the weight variance. *)

open Slimsim_sta

type result = {
  probability : float;
  ci_low : float;
  ci_high : float;  (** CLT interval at the requested confidence *)
  paths : int;
  hits : int;  (** paths that reached the goal under the biased measure *)
  relative_error : float;  (** CI half-width / probability *)
  bias : float;
  wall_seconds : float;
}

val estimate :
  ?seed:int64 ->
  ?config:Path.config ->
  ?hold:Expr.t ->
  ?bias_of:(int -> int -> float) ->
  Network.t ->
  goal:Expr.t ->
  horizon:float ->
  strategy:Strategy.t ->
  bias:float ->
  paths:int ->
  delta:float ->
  unit ->
  (result, Path.error) Result.t

val pp_result : Format.formatter -> result -> unit
