(** Export of recorded simulation paths — the COMPASS GUI shows traces;
    here they become machine-readable artifacts. *)

val to_csv : Path.step_record list -> string
(** Header [time,delay,action] and one row per step; commas and quotes
    in descriptions are escaped per RFC 4180. *)

val pp : Format.formatter -> Path.step_record list -> unit
(** Human-readable rendering (the CLI's default). *)
