module I = Slimsim_intervals.Interval_set

type alternatives = {
  step : int;
  state : Slimsim_sta.State.t;
  inv_window : I.t;
  timed : Slimsim_sta.Moves.timed list;
  markov : (int * int * float) list;
}

type choice =
  | Fire of { index : int; delay : float }
  | Fire_markov of { index : int; delay : float }
  | Advance of float
  | Abort

type script = alternatives -> choice

type t = Asap | Progressive | Local | Max_time | Scripted of script

let to_string = function
  | Asap -> "asap"
  | Progressive -> "progressive"
  | Local -> "local"
  | Max_time -> "maxtime"
  | Scripted _ -> "input"

let of_string = function
  | "asap" -> Ok Asap
  | "progressive" -> Ok Progressive
  | "local" -> Ok Local
  | "maxtime" | "max-time" | "max_time" -> Ok Max_time
  | s -> Error (Printf.sprintf "unknown strategy %S" s)

let all_automated = [ Asap; Progressive; Local; Max_time ]
