(** The Monte Carlo engine: drives path generation until the statistical
    generator (§III-A) is satisfied, sequentially or across multiple
    domains (§III-C).

    Path [i] always draws from an RNG derived from [(seed, i)] and
    samples are consumed in path order (via buffered round-robin
    collection in the parallel case), so an estimate is a deterministic
    function of [(model, property, strategy, generator, seed)] —
    independent of the number of workers. *)

open Slimsim_sta

type result = {
  probability : float;
  ci_low : float;
  ci_high : float;  (** Hoeffding interval at the requested confidence *)
  paths : int;
  successes : int;
  deadlock_paths : int;  (** paths falsified by dead/timelock (§III-D) *)
  errors : int;  (** paths aborted by an error policy or model error *)
  wall_seconds : float;
}

val run :
  ?workers:int ->
  ?seed:int64 ->
  ?config:Path.config ->
  ?hold:Expr.t ->
  Network.t ->
  goal:Expr.t ->
  horizon:float ->
  strategy:Strategy.t ->
  generator:Slimsim_stats.Generator.t ->
  unit ->
  (result, Path.error) Result.t
(** [workers = 1] (the default) runs in-process; [workers > 1] spawns
    that many domains.  A path error under the [`Error] deadlock policy
    aborts the whole run.  Scripted strategies are restricted to
    [workers = 1] (scripts are stateful user callbacks). *)

val estimate :
  ?workers:int ->
  ?seed:int64 ->
  ?config:Path.config ->
  ?hold:Expr.t ->
  Network.t ->
  goal:Expr.t ->
  horizon:float ->
  strategy:Strategy.t ->
  delta:float ->
  eps:float ->
  unit ->
  (result, Path.error) Result.t
(** Convenience wrapper using the paper's Chernoff–Hoeffding generator. *)

val pp_result : Format.formatter -> result -> unit
