lib/sim/trace.mli: Format Path
