lib/sim/engine.ml: Array Atomic Condition Domain Fmt Mutex Path Queue Slimsim_sta Slimsim_stats Strategy Unix
