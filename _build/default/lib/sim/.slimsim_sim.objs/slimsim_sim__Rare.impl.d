lib/sim/rare.ml: Float Fmt Path Slimsim_stats Unix
