lib/sim/path.ml: Array Expr Float Linear List Moves Option Printf Result Slimsim_intervals Slimsim_sta Slimsim_stats State Strategy Value
