lib/sim/strategy.mli: Slimsim_intervals Slimsim_sta
