lib/sim/engine.mli: Expr Format Network Path Result Slimsim_sta Slimsim_stats Strategy
