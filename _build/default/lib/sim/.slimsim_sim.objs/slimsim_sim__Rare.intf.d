lib/sim/rare.mli: Expr Format Network Path Result Slimsim_sta Strategy
