lib/sim/path.mli: Expr Network Slimsim_intervals Slimsim_sta Slimsim_stats Strategy
