lib/sim/strategy.ml: Printf Slimsim_intervals Slimsim_sta
