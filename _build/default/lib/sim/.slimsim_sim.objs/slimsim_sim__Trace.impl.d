lib/sim/trace.ml: Buffer Fmt List Path Printf String
