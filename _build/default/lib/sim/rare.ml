module Rng = Slimsim_stats.Rng
module Welford = Slimsim_stats.Welford

type result = {
  probability : float;
  ci_low : float;
  ci_high : float;
  paths : int;
  hits : int;
  relative_error : float;
  bias : float;
  wall_seconds : float;
}

let estimate ?(seed = 0x0DDBA11L) ?config ?hold ?bias_of net ~goal ~horizon
    ~strategy ~bias ~paths ~delta () =
  if paths <= 0 then invalid_arg "Rare.estimate: paths must be positive";
  let cfg =
    match config with
    | Some c -> { c with Path.horizon }
    | None -> Path.default_config ~horizon
  in
  let t0 = Unix.gettimeofday () in
  let w = Welford.create () in
  let hits = ref 0 in
  let rec go i =
    if i >= paths then begin
      let lo, hi = Welford.confidence_interval w ~delta in
      let mean = Welford.mean w in
      Ok
        {
          probability = mean;
          ci_low = Float.max 0.0 lo;
          ci_high = hi;
          paths;
          hits = !hits;
          relative_error = (if mean > 0.0 then (hi -. lo) /. 2.0 /. mean else infinity);
          bias;
          wall_seconds = Unix.gettimeofday () -. t0;
        }
    end
    else
      let rng = Rng.for_path ~seed ~path:i in
      match
        fst (Path.generate_weighted ?hold ~bias ?bias_of net cfg strategy rng ~goal)
      with
      | Ok (Path.Sat _, ratio) ->
        incr hits;
        Welford.add w ratio;
        go (i + 1)
      | Ok (_, _) ->
        Welford.add w 0.0;
        go (i + 1)
      | Error e -> Error e
  in
  go 0

let pp_result ppf r =
  Fmt.pf ppf
    "p = %.3e  [%.3e, %.3e]  (bias %g, %d/%d biased hits, rel.err %.1f%%, %.2fs)"
    r.probability r.ci_low r.ci_high r.bias r.hits r.paths
    (100.0 *. r.relative_error) r.wall_seconds
