(** The industrial launcher case study (§V, Figures 4 and 5): PCDUs with
    linearly draining batteries and permanent battery faults, GPS and
    gyro sensor groups, two command triplexes of three DPU channels each
    (2-out-of-3 voting), thrusters driven by either triplex, and a
    mission phase.

    Two variants, matching the two graphs of Figure 5:
    - [`Permanent]: DPU faults are permanent; the model then contains
      only probabilistic and deterministic transitions, so all
      strategies coincide (left graph).
    - [`Recoverable]: DPU faults are hot; a supervisor in each channel
      restarts the DPU after a non-deterministic delay in
      [[restart_min, restart_max]], but a restart is only effective
      once the unit has cooled down for a non-deterministic time in
      [[cool_min, cool_max]].  ASAP always restarts too early (the
      cooldown clock restarts with the unit), MaxTime never does, and
      Progressive preempts early restarts more often than Local —
      reproducing the strategy ordering of the right graph. *)

val source : variant:[ `Permanent | `Recoverable ] -> string

val goal_failure : string
(** Loss of thruster control while in flight:
    [mission in mode flight and not thrusters.ctl]. *)

val dpu_fault_rate : float
val battery_fault_rate : float
val sensor_fault_rate : float
val cool_min : float
val cool_max : float
val restart_min : float
val restart_max : float
val poll_min : float
val poll_max : float
val verify_min : float
val verify_max : float
val max_retries : int
