(* The redundancy benchmark of §IV.  Untimed: failures are exponential
   error events, monitors switch immediately (guarded transitions), so
   the model is analyzable by the CTMC pipeline and the simulator
   alike.  All units run hot, which gives a closed-form ground truth. *)

let sensor_rate = 1.0e-3
let filter_rate = 5.0e-4

let unit_names prefix n = List.init n (fun i -> Printf.sprintf "%s%d" prefix (i + 1))

let source ~n =
  if n < 1 || n > 26 then invalid_arg "Sensor_filter.source: n must be in 1..26";
  let b = Buffer.create 8192 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "-- Sensor/filter redundancy benchmark (section IV, Table I), n = %d\n" n;
  pf
    {|
device Sensor
features
  value: out data port int [0, 9] := 3;
end Sensor;

device implementation Sensor.Imp
modes
  run: initial mode;
end Sensor.Imp;

error model SensorFail
states
  ok: initial state;
  failed: state;
events
  fault: occurrence poisson %.9g;
transitions
  ok -[fault]-> failed;
end SensorFail;

device Filter
features
  feed: in data port int [0, 9] := 3;
  value: out data port int [0, 45] := 12;
end Filter;

device implementation Filter.Imp
flows
  value := feed * 4;
modes
  run: initial mode;
end Filter.Imp;

error model FilterFail
states
  ok: initial state;
  failed: state;
events
  fault: occurrence poisson %.9g;
transitions
  ok -[fault]-> failed;
end FilterFail;
|}
    sensor_rate filter_rate;
  (* --- sensor bank --- *)
  let sensors = unit_names "s" n in
  pf
    {|
system SensorBank
features
  value: out data port int [0, 9] := 3;
  exhausted: out data port bool := false;
end SensorBank;

system implementation SensorBank.Imp
subcomponents
|};
  List.iter (fun s -> pf "  %s: device Sensor.Imp;\n" s) sensors;
  pf "modes\n";
  List.iteri
    (fun i _ -> pf "  use%d:%s mode;\n" (i + 1) (if i = 0 then " initial" else ""))
    sensors;
  pf "  dead: mode;\ntransitions\n";
  List.iteri
    (fun i s ->
      if i < n - 1 then
        pf "  use%d -[when %s.value > 5 then value := s%d.value]-> use%d;\n" (i + 1)
          s (i + 2) (i + 2)
      else
        pf "  use%d -[when %s.value > 5 then exhausted := true; value := 0]-> dead;\n"
          (i + 1) s)
    sensors;
  pf "end SensorBank.Imp;\n";
  (* --- filter bank --- *)
  let filters = unit_names "f" n in
  pf
    {|
system FilterBank
features
  feed: in data port int [0, 9] := 3;
  value: out data port int [0, 45] := 12;
  exhausted: out data port bool := false;
end FilterBank;

system implementation FilterBank.Imp
subcomponents
|};
  List.iter (fun f -> pf "  %s: device Filter.Imp;\n" f) filters;
  pf "connections\n";
  List.iter (fun f -> pf "  feed -> %s.feed;\n" f) filters;
  pf "modes\n";
  List.iteri
    (fun i _ -> pf "  use%d:%s mode;\n" (i + 1) (if i = 0 then " initial" else ""))
    filters;
  pf "  dead: mode;\ntransitions\n";
  List.iteri
    (fun i f ->
      (* a failed filter emits zero, but zero input is not the filter's
         fault: the monitor distinguishes the two (per the paper) *)
      if i < n - 1 then
        pf "  use%d -[when %s.value = 0 and feed > 0 then value := f%d.value]-> use%d;\n"
          (i + 1) f (i + 2) (i + 2)
      else
        pf
          "  use%d -[when %s.value = 0 and feed > 0 then exhausted := true; value := 0]-> dead;\n"
          (i + 1) f)
    filters;
  pf "end FilterBank.Imp;\n";
  (* --- root --- *)
  pf
    {|
system Main
end Main;

system implementation Main.Imp
subcomponents
  sensors: system SensorBank.Imp;
  filters: system FilterBank.Imp;
connections
  sensors.value -> filters.feed;
end Main.Imp;
|};
  List.iter
    (fun s ->
      pf
        {|
extend sensors.%s with SensorFail
injections
  inject failed: value := 9;
end extend;
|}
        s)
    sensors;
  List.iter
    (fun f ->
      pf
        {|
extend filters.%s with FilterFail
injections
  inject failed: value := 0;
end extend;
|}
        f)
    filters;
  pf "\nroot Main.Imp;\n";
  Buffer.contents b

let detect_min = 5.0
let detect_max = 60.0

(* Timed variant: each bank owns a detection clock; a fault must be
   observed for a non-deterministic time in [detect_min, detect_max]
   before the switch happens.  Only the simulator can analyze this
   variant (the exact chain is untimed-only, as §IV notes). *)
let timed_source ~n =
  if n < 1 || n > 26 then
    invalid_arg "Sensor_filter.timed_source: n must be in 1..26";
  let detect_block bank_letter cond_of n =
    let b = Buffer.create 1024 in
    let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
    pf "subcomponents
";
    for i = 1 to n do
      pf "  %s%d: device %s.Imp;
" bank_letter i
        (if bank_letter = "s" then "Sensor" else "Filter")
    done;
    pf "  dc: data clock;\n";
    if bank_letter = "f" then begin
      pf "connections\n";
      for i = 1 to n do
        pf "  feed -> f%d.feed;\n" i
      done
    end;
    pf "modes\n";
    for i = 1 to n do
      pf "  use%d:%s mode;
" i (if i = 1 then " initial" else "");
      pf "  detect%d: mode while dc <= %.9g;
" i detect_max
    done;
    pf "  dead: mode;
transitions
";
    for i = 1 to n do
      pf "  use%d -[when %s then dc := 0.0]-> detect%d;
" i (cond_of i) i;
      if i < n then
        pf "  detect%d -[when dc >= %.9g then value := %s%d.value]-> use%d;
" i
          detect_min bank_letter (i + 1) (i + 1)
      else
        pf
          "  detect%d -[when dc >= %.9g then exhausted := true; value := 0]-> dead;
"
          i detect_min
    done;
    Buffer.contents b
  in
  let b = Buffer.create 8192 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "-- Timed sensor/filter benchmark (detection latency [%g, %g]), n = %d
"
    detect_min detect_max n;
  pf
    {|
device Sensor
features
  value: out data port int [0, 9] := 3;
end Sensor;

device implementation Sensor.Imp
modes
  run: initial mode;
end Sensor.Imp;

error model SensorFail
states
  ok: initial state;
  failed: state;
events
  fault: occurrence poisson %.9g;
transitions
  ok -[fault]-> failed;
end SensorFail;

device Filter
features
  feed: in data port int [0, 9] := 3;
  value: out data port int [0, 45] := 12;
end Filter;

device implementation Filter.Imp
flows
  value := feed * 4;
modes
  run: initial mode;
end Filter.Imp;

error model FilterFail
states
  ok: initial state;
  failed: state;
events
  fault: occurrence poisson %.9g;
transitions
  ok -[fault]-> failed;
end FilterFail;

system SensorBank
features
  value: out data port int [0, 9] := 3;
  exhausted: out data port bool := false;
end SensorBank;

system implementation SensorBank.Imp
%send SensorBank.Imp;

system FilterBank
features
  feed: in data port int [0, 9] := 3;
  value: out data port int [0, 45] := 12;
  exhausted: out data port bool := false;
end FilterBank;

system implementation FilterBank.Imp
%send FilterBank.Imp;

system Main
end Main;

system implementation Main.Imp
subcomponents
  sensors: system SensorBank.Imp;
  filters: system FilterBank.Imp;
connections
  sensors.value -> filters.feed;
end Main.Imp;
|}
    sensor_rate filter_rate
    (detect_block "s" (fun i -> Printf.sprintf "s%d.value > 5" i) n)
    (detect_block "f" (fun i -> Printf.sprintf "f%d.value = 0 and feed > 0" i) n);
  List.iter
    (fun i ->
      pf
        "
extend sensors.s%d with SensorFail
injections
  inject failed: value := 9;
end extend;
"
        i)
    (List.init n (fun i -> i + 1));
  List.iter
    (fun i ->
      pf
        "
extend filters.f%d with FilterFail
injections
  inject failed: value := 0;
end extend;
"
        i)
    (List.init n (fun i -> i + 1));
  pf "
root Main.Imp;
";
  Buffer.contents b

let goal_exhausted = "sensors.exhausted or filters.exhausted"

let goal_all_failed ~n =
  let conj sep xs = String.concat sep xs in
  let sensor_part =
    unit_names "s" n
    |> List.map (fun s -> Printf.sprintf "sensors.%s.value > 5" s)
    |> conj " and "
  in
  let filter_part =
    unit_names "f" n
    |> List.map (fun f ->
           Printf.sprintf "filters.%s.value != filters.%s.feed * 4" f f)
    |> conj " and "
  in
  Printf.sprintf "(%s) or (%s)" sensor_part filter_part

let closed_form ~n ~horizon =
  let p rate = 1.0 -. exp (-.rate *. horizon) in
  let psn = p sensor_rate ** float_of_int n in
  let pfn = p filter_rate ** float_of_int n in
  psn +. pfn -. (psn *. pfn)
