(** An M/M/1/K queue as a SLIM model: exponential arrivals and services
    racing in a single birth–death process.  Not from the paper's
    evaluation — it serves as an independent cross-validation substrate
    where the simulator and the CTMC pipeline can be compared on plain
    and bounded-until properties with textbook dynamics. *)

val source : arrival:float -> service:float -> capacity:int -> string
(** Requires positive rates and [1 <= capacity <= 20].  The model
    exposes [q] (current queue length) and [served] (completed jobs,
    saturating at 9) as data ports. *)

val goal_full : capacity:int -> string
(** Goal expression: the queue is full. *)
