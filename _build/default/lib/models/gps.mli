(** The GPS example of the paper (Listings 1 and 2, Figure 2): a device
    with acquisition/active modes, a timed acquisition window, and an
    error model with transient, hot and permanent faults.  The transient
    fault recovers after a non-deterministic delay in [[0.2, 0.3]] s (the
    paper's [200, 300] msec window); the hot fault recovers when the
    unit is restarted by a monitor. *)

val source : string
(** Complete SLIM model: GPS + error model + monitor that restarts the
    unit when the fix is lost. *)

val nominal_only : string
(** Just Listing 1: the GPS device without faults. *)

val goal_no_fix : string
(** Property goal: the observed measurement signal is false while the
    GPS claims to be active (a fault is visible). *)

val goal_acquired : string
(** Property goal for the nominal model: a fix has been acquired. *)
