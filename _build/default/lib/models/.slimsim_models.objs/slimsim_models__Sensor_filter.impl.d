lib/models/sensor_filter.ml: Buffer List Printf String
