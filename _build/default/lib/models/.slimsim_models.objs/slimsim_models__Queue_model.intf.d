lib/models/queue_model.mli:
