lib/models/gps.ml:
