lib/models/sensor_filter.mli:
