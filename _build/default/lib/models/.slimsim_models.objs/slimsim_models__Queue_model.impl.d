lib/models/queue_model.ml: Buffer Printf
