lib/models/gps.mli:
