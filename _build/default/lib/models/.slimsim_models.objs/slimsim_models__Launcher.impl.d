lib/models/launcher.ml: Buffer List Printf
