lib/models/launcher.mli:
