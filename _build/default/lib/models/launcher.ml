(* The launcher case study of §V.  Rates are scaled (as in the paper) so
   the behaviour is visible at horizons of a few hundred seconds. *)

let dpu_fault_rate = 0.02
let battery_fault_rate = 1.0e-4
let sensor_fault_rate = 1.0e-3
let cool_min = 1.0
let cool_max = 2.0
let restart_min = 0.3
let restart_max = 2.5
let poll_min = 4.0
let poll_max = 6.0
let verify_min = 0.3
let verify_max = 0.6
let max_retries = 3

let goal_failure = "mission in mode flight and not thrusters.ctl"

let source ~variant =
  let b = Buffer.create 16384 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "-- Launcher case study (section V), %s DPU faults\n"
    (match variant with `Permanent -> "permanent" | `Recoverable -> "recoverable");
  (* ---- power ---- *)
  pf
    {|
device Pcdu
features
  power: out data port bool := true;
end Pcdu;

device implementation Pcdu.Imp
subcomponents
  energy: data continuous := 100000.0;
modes
  on: initial mode while energy >= 0.0 der energy = -1.0;
  off: mode;
transitions
  on -[when energy <= 0.0 then power := false]-> off;
end Pcdu.Imp;

error model PcduFail
states
  ok: initial state;
  dead: state;
events
  fault: occurrence poisson %.9g;
transitions
  ok -[fault]-> dead;
end PcduFail;
|}
    battery_fault_rate;
  (* ---- sensors ---- *)
  pf
    {|
device Gps
features
  sig: out data port bool := false;
end Gps;

device implementation Gps.Imp
subcomponents
  x: data clock;
modes
  acquisition: initial mode while x <= 120.0;
  active: mode;
transitions
  acquisition -[when x >= 10.0 then sig := true]-> active;
end Gps.Imp;

device Gyro
features
  sig: out data port bool := true;
end Gyro;

device implementation Gyro.Imp
modes
  run: initial mode;
end Gyro.Imp;
|};
  (match variant with
  | `Permanent ->
    pf
      {|
error model SensorFail
states
  ok: initial state;
  dead: state;
events
  e_perm: occurrence poisson %.9g;
transitions
  ok -[e_perm]-> dead;
end SensorFail;
|}
      sensor_fault_rate
  | `Recoverable ->
    pf
      {|
error model SensorFail
states
  ok: initial state;
  transient: state;
  dead: state;
events
  e_trans: occurrence poisson %.9g;
  e_perm: occurrence poisson %.9g;
transitions
  ok -[e_trans]-> transient;
  transient -[heal within 0.2 .. 0.3]-> ok;
  ok -[e_perm]-> dead;
end SensorFail;
|}
      (2.0 *. sensor_fault_rate)
      sensor_fault_rate);
  (* ---- nav or-bus ---- *)
  pf
    {|
system NavBus
features
  s1: in data port bool := false;
  s2: in data port bool := false;
  s3: in data port bool := true;
  s4: in data port bool := true;
  nav: out data port bool := true;
end NavBus;

system implementation NavBus.Imp
flows
  nav := s1 or s2 or s3 or s4;
end NavBus.Imp;
|};
  (* ---- DPU ---- *)
  pf
    {|
processor Dpu
features
  power: in data port bool := true;
  nav: in data port bool := true;
  cmd: out data port bool := true;
  ok: out data port bool := true;
end Dpu;

processor implementation Dpu.Imp
flows
  cmd := power and nav;
  ok := power and nav;
modes
  run: initial mode;
end Dpu.Imp;
|};
  (match variant with
  | `Permanent ->
    pf
      {|
error model DpuFail
states
  ok: initial state;
  dead: state;
events
  fault: occurrence poisson %.9g;
transitions
  ok -[fault]-> dead;
end DpuFail;
|}
      dpu_fault_rate
  | `Recoverable ->
    pf
      {|
error model DpuFail
states
  ok: initial state;
  hot_early: state;
  hot_ready: state;
events
  fault: occurrence poisson %.9g;
transitions
  ok -[fault]-> hot_early;
  -- the unit must cool down before a restart can take
  hot_early -[cool within %.9g .. %.9g]-> hot_ready;
  -- restarting too early is ineffective (and restarts the cooldown)
  hot_early -[@activation]-> hot_early;
  hot_ready -[@activation]-> ok;
end DpuFail;
|}
      dpu_fault_rate cool_min cool_max);
  (* ---- channel: one DPU plus its supervisor ---- *)
  pf
    {|
system Channel
features
  power: in data port bool := true;
  nav: in data port bool := true;
  cmd: out data port bool := true;
end Channel;

system implementation Channel.Imp
subcomponents
  dpu: processor Dpu.Imp;
|};
  (match variant with
  | `Permanent ->
    pf
      {|connections
  power -> dpu.power;
  nav -> dpu.nav;
  dpu.cmd -> cmd;
end Channel.Imp;
|}
  | `Recoverable ->
    (* FDIR supervisor: slow health polling while the unit looks fine
       (bounded window, so detection has a deadline under every
       strategy), then a restart after a non-deterministic wait, a fast
       verification poll, and a bounded number of retries before giving
       the unit up.  ASAP burns its retries restarting before the unit
       has cooled down and always gives up; MaxTime always waits long
       enough. *)
    pf
      {|  w: data clock;
  p: data clock;
  tries: data int [0, %d] := 0;
connections
  power -> dpu.power;
  nav -> dpu.nav;
  dpu.cmd -> cmd;
modes
  watch: initial mode while p <= %.9g;
  waiting: mode while w <= %.9g;
  verify: mode while p <= %.9g;
  gaveup: mode;
transitions
  watch -[when p >= %.9g and dpu.ok then p := 0.0]-> watch;
  watch -[when p >= %.9g and not dpu.ok then w := 0.0]-> waiting;
  waiting -[when w >= %.9g then reset dpu; p := 0.0]-> verify;
  verify -[when p >= %.9g and dpu.ok then p := 0.0; tries := 0]-> watch;
  verify -[when p >= %.9g and not dpu.ok and tries < %d then w := 0.0; tries := tries + 1]-> waiting;
  verify -[when p >= %.9g and not dpu.ok and tries >= %d]-> gaveup;
end Channel.Imp;
|}
      max_retries poll_max restart_max verify_max poll_min poll_min restart_min
      verify_min verify_min (max_retries - 1) verify_min (max_retries - 1));
  (* ---- triplex with 2-out-of-3 voting ---- *)
  pf
    {|
system Triplex
features
  power: in data port bool := true;
  nav: in data port bool := true;
  cmd: out data port bool := true;
end Triplex;

system implementation Triplex.Imp
subcomponents
  ch1: system Channel.Imp;
  ch2: system Channel.Imp;
  ch3: system Channel.Imp;
connections
  power -> ch1.power;
  power -> ch2.power;
  power -> ch3.power;
  nav -> ch1.nav;
  nav -> ch2.nav;
  nav -> ch3.nav;
flows
  cmd := (ch1.cmd and ch2.cmd) or (ch1.cmd and ch3.cmd) or (ch2.cmd and ch3.cmd);
end Triplex.Imp;
|};
  (* ---- thrusters and mission ---- *)
  pf
    {|
device Thrusters
features
  cmd1: in data port bool := true;
  cmd2: in data port bool := true;
  ctl: out data port bool := true;
end Thrusters;

device implementation Thrusters.Imp
flows
  ctl := cmd1 or cmd2;
end Thrusters.Imp;

process Mission
end Mission;

process implementation Mission.Imp
modes
  flight: initial mode;
end Mission.Imp;

system Main
end Main;

system implementation Main.Imp
subcomponents
  pcdu1: device Pcdu.Imp;
  pcdu2: device Pcdu.Imp;
  gps1: device Gps.Imp;
  gps2: device Gps.Imp;
  gyro1: device Gyro.Imp;
  gyro2: device Gyro.Imp;
  navbus: system NavBus.Imp;
  tri1: system Triplex.Imp;
  tri2: system Triplex.Imp;
  thrusters: device Thrusters.Imp;
  mission: process Mission.Imp;
connections
  pcdu1.power -> tri1.power;
  pcdu2.power -> tri2.power;
  gps1.sig -> navbus.s1;
  gps2.sig -> navbus.s2;
  gyro1.sig -> navbus.s3;
  gyro2.sig -> navbus.s4;
  navbus.nav -> tri1.nav;
  navbus.nav -> tri2.nav;
  tri1.cmd -> thrusters.cmd1;
  tri2.cmd -> thrusters.cmd2;
end Main.Imp;
|};
  (* ---- fault injections (model extension) ---- *)
  List.iter
    (fun p ->
      pf
        {|
extend %s with PcduFail
injections
  inject dead: power := false;
end extend;
|}
        p)
    [ "pcdu1"; "pcdu2" ];
  List.iter
    (fun s ->
      let states =
        match variant with
        | `Permanent -> [ "dead" ]
        | `Recoverable -> [ "transient"; "dead" ]
      in
      pf "\nextend %s with SensorFail\ninjections\n" s;
      List.iter (fun st -> pf "  inject %s: sig := false;\n" st) states;
      pf "end extend;\n")
    [ "gps1"; "gps2"; "gyro1"; "gyro2" ];
  List.iter
    (fun tri ->
      List.iter
        (fun ch ->
          let states =
            match variant with
            | `Permanent -> [ "dead" ]
            | `Recoverable -> [ "hot_early"; "hot_ready" ]
          in
          pf "\nextend %s.%s.dpu with DpuFail\ninjections\n" tri ch;
          List.iter
            (fun st ->
              pf "  inject %s: cmd := false;\n  inject %s: ok := false;\n" st st)
            states;
          pf "end extend;\n")
        [ "ch1"; "ch2"; "ch3" ])
    [ "tri1"; "tri2" ];
  pf "\nroot Main.Imp;\n";
  Buffer.contents b
