let source ~arrival ~service ~capacity =
  if arrival <= 0.0 || service <= 0.0 then
    invalid_arg "Queue_model.source: rates must be positive";
  if capacity < 1 || capacity > 20 then
    invalid_arg "Queue_model.source: capacity must be in 1..20";
  let b = Buffer.create 2048 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "-- M/M/1/%d queue: arrivals %.9g, services %.9g\n" capacity arrival service;
  pf
    {|
system Queue
features
  q: out data port int [0, %d] := 0;
  served: out data port int [0, 9] := 0;
end Queue;

system implementation Queue.Imp
modes
|}
    capacity;
  for i = 0 to capacity do
    pf "  q%d:%s mode;\n" i (if i = 0 then " initial" else "")
  done;
  pf "transitions\n";
  for i = 0 to capacity - 1 do
    pf "  q%d -[rate %.9g then q := %d]-> q%d;\n" i arrival (i + 1) (i + 1)
  done;
  for i = 1 to capacity do
    pf "  q%d -[rate %.9g then q := %d; served := min(served + 1, 9)]-> q%d;\n" i
      service (i - 1) (i - 1)
  done;
  pf "end Queue.Imp;\n\nroot Queue.Imp;\n";
  Buffer.contents b

let goal_full ~capacity = Printf.sprintf "q = %d" capacity
