(** The redundancy benchmark of §IV (Figure 3, Table I): a sensor bank
    and a filter bank, each with [n]-fold hot redundancy, a monitor that
    switches to the next redundant unit when the value goes out of range
    (sensor fault: value too high; filter fault: value zero), and a
    system failure when either bank is exhausted.

    The model is untimed (no clocks), so it can be analyzed both by the
    CTMC baseline pipeline and by the simulator.  Since every unit runs
    hot, the failure probability has the closed form
    [ps^n + pf^n - ps^n·pf^n] with [p = 1 - exp(-rate·horizon)] — used
    by the test suite as ground truth. *)

val source : n:int -> string
(** The SLIM model with [n]-fold redundancy per bank; requires
    [1 <= n <= 26]. *)

val timed_source : n:int -> string
(** The timed variant of the same family: the monitors take a
    non-deterministic detection latency in
    [[detect_min, detect_max]] before switching to the next redundant
    unit.  §IV notes the exact tool-chain "is limited to discrete
    models", so the paper benchmarked the untimed variant; this one can
    only be analyzed by the simulator, and its mode-based failure
    condition is strategy-sensitive. *)

val detect_min : float
val detect_max : float

val sensor_rate : float
val filter_rate : float

val goal_exhausted : string
(** Mode-based failure condition: some bank has switched past its last
    redundant unit (depends on monitor scheduling; use with ASAP). *)

val goal_all_failed : n:int -> string
(** Value-based failure condition: every sensor reads too high or every
    filter reads zero.  Purely fault-driven, hence strategy-independent
    and equal to the closed form. *)

val closed_form : n:int -> horizon:float -> float
(** Ground-truth [P(<> [0,horizon] all-failed)] for hot redundancy. *)
