(* The paper's running example (Listings 1, 2 and Figure 2), completed
   with a supervising root component that restarts the GPS when its
   signal is lost — which gives the @activation recovery of the hot
   fault something to ride on.  Time unit: seconds; fault rates are
   scaled up (as in the paper's case study) so the behaviour shows up
   within short horizons. *)

let nominal_only =
  {|
device GPS
features
  measurement: out data port bool := false;
end GPS;

device implementation GPS.Imp
subcomponents
  x: data clock;
modes
  acquisition: initial mode while x <= 120.0;
  active: mode;
transitions
  -- a fix is acquired after 10..120 s (non-deterministic)
  acquisition -[when x >= 10.0 then measurement := true]-> active;
end GPS.Imp;

root GPS.Imp;
|}

let source =
  {|
-- Listing 1: the GPS device
device GPS
features
  measurement: out data port bool := false;
end GPS;

device implementation GPS.Imp
subcomponents
  x: data clock;
modes
  acquisition: initial mode while x <= 120.0;
  active: mode;
transitions
  acquisition -[when x >= 10.0 then measurement := true]-> active;
end GPS.Imp;

-- Listing 2: the GPS error model (Figure 2)
error model GPSFail
states
  ok: initial state;
  transient: state;
  hot: state;
  dead: state;
events
  e_trans: occurrence poisson 0.010;
  e_hot: occurrence poisson 0.004;
  e_perm: occurrence poisson 0.001;
transitions
  ok -[e_trans]-> transient;
  ok -[e_hot]-> hot;
  ok -[e_perm]-> dead;
  -- a transient fault heals itself within [200, 300] msec
  transient -[repair within 0.2 .. 0.3]-> ok;
  -- a hot fault heals when the unit is restarted
  hot -[@activation]-> ok;
end GPSFail;

-- Supervisor: restarts the GPS when the signal disappears
system Main
end Main;

system implementation Main.Imp
subcomponents
  gps: device GPS.Imp;
  w: data clock;
  seen: data bool := false;
modes
  watch: initial mode;
  waiting: mode while w <= 1.0;
transitions
  watch -[when gps.measurement and not seen then seen := true]-> watch;
  watch -[when seen and not gps.measurement then w := 0.0]-> waiting;
  waiting -[when w >= 0.2 then reset gps; seen := false]-> watch;
end Main.Imp;

extend gps with GPSFail
injections
  inject transient: measurement := false;
  inject hot: measurement := false;
  inject dead: measurement := false;
end extend;

root Main.Imp;
|}

let goal_no_fix = "gps in mode active and not gps.measurement"

let goal_acquired = "measurement"
