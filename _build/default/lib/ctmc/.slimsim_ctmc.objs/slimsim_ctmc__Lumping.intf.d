lib/ctmc/lumping.mli: Ctmc
