lib/ctmc/analysis.ml: Ctmc Explorer Fmt Gc Lumping Printf Transient Unix
