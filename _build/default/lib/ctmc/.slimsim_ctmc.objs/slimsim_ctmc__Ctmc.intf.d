lib/ctmc/ctmc.mli: Format
