lib/ctmc/qualitative.mli: Format Slimsim_sta
