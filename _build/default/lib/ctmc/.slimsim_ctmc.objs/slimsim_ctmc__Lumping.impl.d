lib/ctmc/lumping.ml: Array Ctmc Hashtbl List Option Unix
