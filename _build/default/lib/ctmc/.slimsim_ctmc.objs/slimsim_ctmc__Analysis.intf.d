lib/ctmc/analysis.mli: Format Slimsim_sta
