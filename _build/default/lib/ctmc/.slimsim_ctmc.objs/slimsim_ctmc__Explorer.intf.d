lib/ctmc/explorer.mli: Ctmc Slimsim_sta
