lib/ctmc/explorer.ml: Array Ctmc Hashtbl Int List Moves Network Option Printf Queue Slimsim_sta State Unix Value
