lib/ctmc/qualitative.ml: Fmt Hashtbl Linear List Moves Network Printf Queue Slimsim_sta State Value
