lib/ctmc/ctmc.ml: Array Float Fmt Hashtbl List Option
