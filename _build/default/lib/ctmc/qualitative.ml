open Slimsim_sta

type outcome =
  | Holds of { states : int }
  | Violated of { trace : string list; states : int }

let immediate net s =
  Moves.discrete net s
  |> List.filter_map (fun { Moves.move; window } ->
         if Moves.I.mem 0.0 window then Some move else None)

let check_invariant ?(max_states = 1_000_000) (net : Network.t) ~prop =
  let seen = Hashtbl.create 4096 in
  let queue = Queue.create () in
  let push trace s =
    let k = State.hash_key s in
    if not (Hashtbl.mem seen k) then begin
      Hashtbl.add seen k ();
      Queue.push (trace, s) queue
    end
  in
  push [] (State.initial net);
  let result = ref None in
  (try
     while not (Queue.is_empty queue) do
       if Hashtbl.length seen > max_states then
         failwith (Printf.sprintf "state space exceeds %d states" max_states);
       let trace, s = Queue.pop queue in
       if not (State.eval_bool s prop) then begin
         result := Some (Violated { trace = List.rev trace; states = Hashtbl.length seen });
         raise Exit
       end;
       (* both immediate moves and (rate-abstracted) Markovian jumps *)
       List.iter
         (fun mv -> push (Moves.describe net mv :: trace) (Moves.apply net s mv))
         (immediate net s);
       List.iter
         (fun (p, tr, _) ->
           let mv = Moves.Local { proc = p; tr } in
           push (Moves.describe net mv :: trace) (Moves.apply net s mv))
         (Moves.markovian net s)
     done
   with
  | Exit -> ()
  | Failure msg ->
    result := None;
    raise (Failure msg));
  match !result with
  | Some v -> Ok v
  | None -> Ok (Holds { states = Hashtbl.length seen })

let check_invariant ?max_states net ~prop =
  match check_invariant ?max_states net ~prop with
  | v -> v
  | exception Failure msg -> Error msg
  | exception Value.Type_error msg -> Error ("type error: " ^ msg)
  | exception Linear.Nonlinear msg -> Error ("non-linear guard: " ^ msg)

let pp_outcome ppf = function
  | Holds { states } -> Fmt.pf ppf "invariant holds (%d states explored)" states
  | Violated { trace; states } ->
    Fmt.pf ppf "@[<v>invariant VIOLATED (%d states explored); counterexample:@,"
      states;
    List.iter (fun step -> Fmt.pf ppf "  %s@," step) trace;
    Fmt.pf ppf "@]"
