type t = {
  n_states : int;
  initial : (int * float) array;
  rows : (int * float) array array;
  goal : bool array;
  bad : bool array;
}

let make ~n_states ~initial ~transitions ~goal =
  if Array.length goal <> n_states then invalid_arg "Ctmc.make: goal length";
  let bad = Array.make n_states false in
  let mass = List.fold_left (fun acc (_, p) -> acc +. p) 0.0 initial in
  if Float.abs (mass -. 1.0) > 1e-9 then
    invalid_arg "Ctmc.make: initial distribution must sum to 1";
  List.iter
    (fun (s, p) ->
      if s < 0 || s >= n_states then invalid_arg "Ctmc.make: initial state";
      if p < 0.0 then invalid_arg "Ctmc.make: negative initial probability")
    initial;
  let tbl = Array.make n_states [] in
  List.iter
    (fun (s, t, r) ->
      if s < 0 || s >= n_states || t < 0 || t >= n_states then
        invalid_arg "Ctmc.make: state out of range";
      if r <= 0.0 then invalid_arg "Ctmc.make: rate must be positive";
      tbl.(s) <- (t, r) :: tbl.(s))
    transitions;
  let rows =
    Array.map
      (fun entries ->
        let merged = Hashtbl.create 4 in
        List.iter
          (fun (t, r) ->
            Hashtbl.replace merged t
              (r +. Option.value ~default:0.0 (Hashtbl.find_opt merged t)))
          entries;
        Hashtbl.fold (fun t r acc -> (t, r) :: acc) merged []
        |> List.sort compare |> Array.of_list)
      tbl
  in
  { n_states; initial = Array.of_list initial; rows; goal; bad }

let exit_rate t s = Array.fold_left (fun acc (_, r) -> acc +. r) 0.0 t.rows.(s)

let max_exit_rate t =
  let m = ref 0.0 in
  for s = 0 to t.n_states - 1 do
    m := Float.max !m (exit_rate t s)
  done;
  !m

let n_transitions t = Array.fold_left (fun acc row -> acc + Array.length row) 0 t.rows

let uniformized_dtmc t ~q =
  if q <= 0.0 then invalid_arg "Ctmc.uniformized_dtmc: q must be positive";
  Array.mapi
    (fun s row ->
      let out = exit_rate t s in
      let self = 1.0 -. (out /. q) in
      let scaled = Array.map (fun (tgt, r) -> (tgt, r /. q)) row in
      if self > 0.0 then Array.append [| (s, self) |] scaled else scaled)
    t.rows

let pp_summary ppf t =
  Fmt.pf ppf "ctmc: %d states, %d transitions, %d goal states" t.n_states
    (n_transitions t)
    (Array.fold_left (fun acc g -> if g then acc + 1 else acc) 0 t.goal)

let with_bad t bad =
  if Array.length bad <> t.n_states then invalid_arg "Ctmc.with_bad: length";
  { t with bad }
