(* log k! by summation; cached incrementally by the caller's loop. *)
let log_poisson_weight ~lambda k =
  if lambda <= 0.0 then if k = 0 then 0.0 else neg_infinity
  else begin
    let log_fact = ref 0.0 in
    for i = 2 to k do
      log_fact := !log_fact +. log (float_of_int i)
    done;
    (-.lambda) +. (float_of_int k *. log lambda) -. !log_fact
  end

let reach_probability ?(precision = 1e-10) (c : Ctmc.t) ~horizon =
  let initial_goal_mass =
    Array.fold_left
      (fun acc (s, p) -> if c.Ctmc.goal.(s) then acc +. p else acc)
      0.0 c.Ctmc.initial
  in
  if horizon <= 0.0 then initial_goal_mass
  else begin
    (* goal states become absorbing (success); bad states become
       absorbing too (the hold condition failed first) *)
    let rows =
      Array.mapi
        (fun s row -> if c.Ctmc.goal.(s) || c.Ctmc.bad.(s) then [||] else row)
        c.Ctmc.rows
    in
    let absorbed = { c with Ctmc.rows } in
    let q = Ctmc.max_exit_rate absorbed in
    if q <= 0.0 then initial_goal_mass
    else begin
      let p_matrix = Ctmc.uniformized_dtmc absorbed ~q in
      let n = c.Ctmc.n_states in
      let pi = Array.make n 0.0 in
      Array.iter (fun (s, p) -> pi.(s) <- pi.(s) +. p) c.Ctmc.initial;
      let lambda = q *. horizon in
      (* Incremental Poisson weights in log space to survive large
         lambda; start from w_0 and recur w_{k+1} = w_k * lambda/(k+1)
         on the log scale. *)
      let log_w = ref (-.lambda) in
      let cumulative = ref 0.0 in
      let result = ref 0.0 in
      let k = ref 0 in
      let goal_mass pi =
        let acc = ref 0.0 in
        for s = 0 to n - 1 do
          if c.Ctmc.goal.(s) then acc := !acc +. pi.(s)
        done;
        !acc
      in
      let scratch = Array.make n 0.0 in
      let continue = ref true in
      while !continue do
        let w = exp !log_w in
        result := !result +. (w *. goal_mass pi);
        cumulative := !cumulative +. w;
        (* stop once the residual mass cannot change the answer *)
        if 1.0 -. !cumulative < precision && float_of_int !k >= lambda then
          continue := false
        else begin
          (* pi <- pi * P *)
          Array.fill scratch 0 n 0.0;
          for s = 0 to n - 1 do
            let mass = pi.(s) in
            if mass > 0.0 then
              Array.iter
                (fun (t, p) -> scratch.(t) <- scratch.(t) +. (mass *. p))
                p_matrix.(s)
          done;
          Array.blit scratch 0 pi 0 n;
          incr k;
          log_w := !log_w +. log lambda -. log (float_of_int !k);
          (* hard safety cap: lambda + 20 sqrt(lambda) + 200 terms *)
          if float_of_int !k > lambda +. (20.0 *. sqrt lambda) +. 200.0 then
            continue := false
        end
      done;
      (* The residual mass is in non-goal states at worst; [result] is a
         lower bound within [precision]. *)
      !result
    end
  end
