type report = {
  probability : float;
  stable_states : int;
  transitions : int;
  lumped_states : int;
  explore_seconds : float;
  lump_seconds : float;
  transient_seconds : float;
  total_seconds : float;
  peak_words : float;
}

let check ?max_states ?hold ?(lump = true) net ~goal ~horizon =
  match Explorer.explore ?max_states ?hold net ~goal with
  | exception Explorer.Not_untimed msg -> Error ("model is not untimed: " ^ msg)
  | exception Explorer.Immediate_cycle msg -> Error msg
  | exception Explorer.Too_many_states n ->
    Error (Printf.sprintf "state space exceeds %d states" n)
  | ctmc, stats ->
    let lumped, lump_seconds =
      if lump then
        let r = Lumping.lump ctmc in
        (r.Lumping.quotient, r.Lumping.refine_seconds)
      else (ctmc, 0.0)
    in
    let t0 = Unix.gettimeofday () in
    let probability = Transient.reach_probability lumped ~horizon in
    let transient_seconds = Unix.gettimeofday () -. t0 in
    let gc = Gc.quick_stat () in
    Ok
      {
        probability;
        stable_states = stats.Explorer.stable_states;
        transitions = stats.Explorer.transitions;
        lumped_states = lumped.Ctmc.n_states;
        explore_seconds = stats.Explorer.explore_seconds;
        lump_seconds;
        transient_seconds;
        total_seconds =
          stats.Explorer.explore_seconds +. lump_seconds +. transient_seconds;
        peak_words = float_of_int gc.Gc.top_heap_words;
      }

let pp_report ppf r =
  Fmt.pf ppf
    "p = %.6f  (%d states -> %d lumped, %d transitions; explore %.2fs, lump %.2fs, transient %.2fs)"
    r.probability r.stable_states r.lumped_states r.transitions
    r.explore_seconds r.lump_seconds r.transient_seconds
