type result = {
  quotient : Ctmc.t;
  block_of : int array;
  n_blocks : int;
  refine_seconds : float;
}

(* Iterated signature refinement: two states stay in the same block iff
   they carry the same label and the same total rate into every current
   block.  This converges to the coarsest ordinary lumping that refines
   the goal labelling. *)
let lump (c : Ctmc.t) =
  let t0 = Unix.gettimeofday () in
  let n = c.Ctmc.n_states in
  let label s =
    (if c.Ctmc.goal.(s) then 1 else 0) lor if c.Ctmc.bad.(s) then 2 else 0
  in
  let block = Array.init n label in
  let n_blocks =
    ref (List.length (List.sort_uniq compare (Array.to_list block)))
  in
  (* With every state in block 0 the goal partition above can waste an
     index; normalize via the signature pass anyway. *)
  let changed = ref true in
  while !changed do
    changed := false;
    (* signature of a state: (current block, sorted (target block, rate)) *)
    let sig_index = Hashtbl.create 64 in
    let next = Array.make n 0 in
    let count = ref 0 in
    for s = 0 to n - 1 do
      let agg = Hashtbl.create 4 in
      Array.iter
        (fun (t, r) ->
          let b = block.(t) in
          Hashtbl.replace agg b
            (r +. Option.value ~default:0.0 (Hashtbl.find_opt agg b)))
        c.Ctmc.rows.(s);
      let signature =
        ( block.(s),
          Hashtbl.fold (fun b r acc -> (b, r) :: acc) agg [] |> List.sort compare )
      in
      let b' =
        match Hashtbl.find_opt sig_index signature with
        | Some b -> b
        | None ->
          let b = !count in
          incr count;
          Hashtbl.add sig_index signature b;
          b
      in
      next.(s) <- b'
    done;
    if !count <> !n_blocks || next <> block then begin
      (* A stable partition re-derives itself (up to renaming); detect
         stability by checking whether the refinement is a bijection of
         the old blocks. *)
      let renames = Hashtbl.create 16 in
      let bijective = ref (!count = !n_blocks) in
      if !bijective then
        for s = 0 to n - 1 do
          match Hashtbl.find_opt renames block.(s) with
          | None -> Hashtbl.add renames block.(s) next.(s)
          | Some b' -> if b' <> next.(s) then bijective := false
        done;
      if not !bijective then begin
        Array.blit next 0 block 0 n;
        n_blocks := !count;
        changed := true
      end
    end
  done;
  (* canonicalize block ids to 0..k-1 in order of first occurrence *)
  let canon = Hashtbl.create 16 in
  let k = ref 0 in
  for s = 0 to n - 1 do
    if not (Hashtbl.mem canon block.(s)) then begin
      Hashtbl.add canon block.(s) !k;
      incr k
    end;
    block.(s) <- Hashtbl.find canon block.(s)
  done;
  let nb = !k in
  (* quotient rates from one representative per block (lumpability makes
     any representative equivalent) *)
  let reps = Array.make nb (-1) in
  for s = n - 1 downto 0 do
    reps.(block.(s)) <- s
  done;
  let transitions = ref [] in
  Array.iteri
    (fun b rep ->
      let agg = Hashtbl.create 4 in
      Array.iter
        (fun (t, r) ->
          let bt = block.(t) in
          Hashtbl.replace agg bt
            (r +. Option.value ~default:0.0 (Hashtbl.find_opt agg bt)))
        c.Ctmc.rows.(rep);
      Hashtbl.iter
        (fun bt r -> if r > 0.0 then transitions := (b, bt, r) :: !transitions)
        agg)
    reps;
  let goal = Array.make nb false in
  for s = 0 to n - 1 do
    if c.Ctmc.goal.(s) then goal.(block.(s)) <- true
  done;
  let init = Hashtbl.create 4 in
  Array.iter
    (fun (s, p) ->
      let b = block.(s) in
      Hashtbl.replace init b
        (p +. Option.value ~default:0.0 (Hashtbl.find_opt init b)))
    c.Ctmc.initial;
  let initial = Hashtbl.fold (fun b p acc -> (b, p) :: acc) init [] in
  let bad = Array.make nb false in
  for s = 0 to n - 1 do
    if c.Ctmc.bad.(s) then bad.(block.(s)) <- true
  done;
  let quotient =
    Ctmc.with_bad (Ctmc.make ~n_states:nb ~initial ~transitions:!transitions ~goal) bad
  in
  {
    quotient;
    block_of = block;
    n_blocks = nb;
    refine_seconds = Unix.gettimeofday () -. t0;
  }
