(** Continuous-time Markov chains with Boolean goal labelling — the
    output of the explicit-state baseline pipeline (§IV), standing in
    for the NuSMV → Sigref → MRMC tool-chain.

    The initial condition is a distribution: eliminating immediate
    (interactive) transitions from the initial state can split the
    probability mass over several stable states. *)

type t = {
  n_states : int;
  initial : (int * float) array;  (** initial distribution *)
  rows : (int * float) array array;
      (** [rows.(s)] are the outgoing rate entries [(target, rate)];
          at most one entry per target *)
  goal : bool array;
  bad : bool array;
      (** "hold violated" states for bounded-until properties: absorbing
          failures in the transient analysis; all-false for plain
          reachability *)
}

val make :
  n_states:int ->
  initial:(int * float) list ->
  transitions:(int * int * float) list ->
  goal:bool array ->
  t
(** Accumulates parallel edges ([s -> t] rates add up).  Validates
    indices, rate positivity, and that the initial distribution sums to
    1 (within 1e-9).  The [bad] labelling starts out all-false; see
    {!with_bad}. *)

val with_bad : t -> bool array -> t
(** Attach a "hold violated" labelling (for bounded-until analysis). *)

val exit_rate : t -> int -> float
val max_exit_rate : t -> float
val n_transitions : t -> int

val uniformized_dtmc : t -> q:float -> (int * float) array array
(** Embedded uniformized DTMC: [P = I + R/q]; rows sum to 1. *)

val pp_summary : Format.formatter -> t -> unit
