(** Qualitative correctness analysis (§II-C): exhaustive invariant
    checking on the untimed abstraction, standing in for COMPASS's
    BDD/SAT model-checking path (NuSMV).

    The reachable state space is explored exhaustively over immediate
    (guarded) and Markovian transitions, abstracting from rates and
    delays; an invariant violation comes with a counterexample trace. *)

type outcome =
  | Holds of { states : int }
  | Violated of { trace : string list; states : int }
      (** transition descriptions from the initial state to a violating
          state *)

val check_invariant :
  ?max_states:int ->
  Slimsim_sta.Network.t ->
  prop:Slimsim_sta.Expr.t ->
  (outcome, string) result
(** Does [prop] hold in every reachable (stable or vanishing) state of
    the untimed abstraction?  [max_states] defaults to 1_000_000. *)

val pp_outcome : Format.formatter -> outcome -> unit
