open Slimsim_sta

exception Not_untimed of string
exception Immediate_cycle of string
exception Too_many_states of int

type stats = {
  stable_states : int;
  transitions : int;
  vanishing_visits : int;
  explore_seconds : float;
}

type key = int array * Value.t array

let key_of (s : State.t) : key = (s.locs, s.vals)

let check_untimed (net : Network.t) =
  Array.iter
    (fun (v : Network.var_info) ->
      match v.kind with
      | Network.Clock | Network.Continuous ->
        raise
          (Not_untimed
             (Printf.sprintf "variable %s is a clock or continuous" v.var_name))
      | Network.Discrete -> ())
    net.vars

(* Immediate moves: guarded moves enabled right now (in an untimed model
   a guard is delay-invariant, so "window contains 0" is the whole
   story).  Post-state invariants are trivially true. *)
let immediate net s =
  let timed = Moves.discrete net s in
  List.filter_map
    (fun { Moves.move; window } ->
      if Moves.I.mem 0.0 window then Some move else None)
    timed

let explore ?(max_states = 2_000_000) ?hold (net : Network.t) ~goal =
  check_untimed net;
  let t0 = Unix.gettimeofday () in
  let index : (key, int) Hashtbl.t = Hashtbl.create 4096 in
  let states : State.t array ref = ref (Array.make 0 (State.initial net)) in
  let n = ref 0 in
  let vanishing = ref 0 in
  let worklist = Queue.create () in
  let intern (s : State.t) =
    let k = key_of s in
    match Hashtbl.find_opt index k with
    | Some i -> i
    | None ->
      let i = !n in
      if i >= max_states then raise (Too_many_states i);
      if i >= Array.length !states then begin
        let bigger =
          Array.make (Int.max 64 (2 * Array.length !states)) s
        in
        Array.blit !states 0 bigger 0 (Array.length !states);
        states := bigger
      end;
      !states.(i) <- s;
      Hashtbl.add index k i;
      incr n;
      Queue.push i worklist;
      i
  in
  (* Distribution over stable states reachable from [s] by immediate
     moves, resolved equiprobably (the simulator's rule, §III-B). *)
  let rec close (s : State.t) prob on_path acc =
    match immediate net s with
    | [] -> (intern s, prob) :: acc
    | moves ->
      incr vanishing;
      let k = key_of s in
      if List.mem k on_path then
        raise
          (Immediate_cycle
             "a cycle of immediate transitions never reaches a stable state");
      let p = prob /. float_of_int (List.length moves) in
      List.fold_left
        (fun acc mv -> close (Moves.apply net s mv) p (k :: on_path) acc)
        acc moves
  in
  let merge entries =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun (i, p) ->
        Hashtbl.replace tbl i
          (p +. Option.value ~default:0.0 (Hashtbl.find_opt tbl i)))
      entries;
    Hashtbl.fold (fun i p acc -> (i, p) :: acc) tbl [] |> List.sort compare
  in
  let initial_dist = merge (close (State.initial net) 1.0 [] []) in
  let transitions = ref [] in
  let n_trans = ref 0 in
  while not (Queue.is_empty worklist) do
    let i = Queue.pop worklist in
    let s = !states.(i) in
    List.iter
      (fun (p, tr, rate) ->
        let s' = Moves.apply net s (Moves.Local { proc = p; tr }) in
        let dist = merge (close s' 1.0 [] []) in
        List.iter
          (fun (j, prob) ->
            transitions := (i, j, rate *. prob) :: !transitions;
            incr n_trans)
          dist)
      (Moves.markovian net s)
  done;
  let goal_arr =
    Array.init !n (fun i -> State.eval_bool !states.(i) goal)
  in
  let ctmc =
    Ctmc.make ~n_states:!n ~initial:initial_dist ~transitions:!transitions
      ~goal:goal_arr
  in
  let ctmc =
    match hold with
    | None -> ctmc
    | Some h ->
      Ctmc.with_bad ctmc
        (Array.init !n (fun i ->
             (not goal_arr.(i)) && not (State.eval_bool !states.(i) h)))
  in
  let stats =
    {
      stable_states = !n;
      transitions = !n_trans;
      vanishing_visits = !vanishing;
      explore_seconds = Unix.gettimeofday () -. t0;
    }
  in
  (ctmc, stats)
