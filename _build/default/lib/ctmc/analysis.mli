(** The complete baseline analysis pipeline of §IV:
    explore (NuSMV) → lump (Sigref) → transient analysis (MRMC). *)

type report = {
  probability : float;
  stable_states : int;
  transitions : int;
  lumped_states : int;
  explore_seconds : float;
  lump_seconds : float;
  transient_seconds : float;
  total_seconds : float;
  peak_words : float;  (** top heap words observed by the GC *)
}

val check :
  ?max_states:int ->
  ?hold:Slimsim_sta.Expr.t ->
  ?lump:bool ->
  Slimsim_sta.Network.t ->
  goal:Slimsim_sta.Expr.t ->
  horizon:float ->
  (report, string) result
(** [lump] defaults to [true]; disabling it measures the value of the
    reduction step (ablation X3 in DESIGN.md). *)

val pp_report : Format.formatter -> report -> unit
