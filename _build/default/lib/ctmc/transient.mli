(** Time-bounded reachability on a CTMC by uniformization with Poisson
    truncation — the MRMC role in the paper's baseline pipeline.

    [P(<> [0,u] goal)] is computed by making goal states absorbing and
    accumulating the Poisson-weighted probability mass in goal states of
    the uniformized DTMC.  The truncation error is bounded by the
    residual Poisson mass, kept below [precision]. *)

val reach_probability : ?precision:float -> Ctmc.t -> horizon:float -> float
(** [precision] defaults to 1e-10.  A zero or negative horizon returns
    the initial goal mass. *)

val log_poisson_weight : lambda:float -> int -> float
(** [log w_k] for the Poisson(lambda) pmf; exposed for testing. *)
