(** Explicit-state exploration of an untimed network into a CTMC.

    This stands in for the paper's NuSMV reachable-state-space
    construction plus the Sigref weak-bisimulation step that removes
    interactive (immediate) transitions: immediate moves are eliminated
    on the fly with the simulator's equiprobable resolution, so the
    baseline and the simulator agree on the underlying probability
    measure (which is what Table I compares). *)

exception Not_untimed of string
(** The network has clocks or continuous variables; the CTMC pipeline
    only treats untimed models (§IV). *)

exception Immediate_cycle of string
(** A cycle of immediate moves: no stable state is ever reached. *)

exception Too_many_states of int

type stats = {
  stable_states : int;
  transitions : int;
  vanishing_visits : int;
      (** immediate-closure expansions performed (vanishing states are
          revisited per predecessor, they are never stored) *)
  explore_seconds : float;
}

val explore :
  ?max_states:int ->
  ?hold:Slimsim_sta.Expr.t ->
  Slimsim_sta.Network.t ->
  goal:Slimsim_sta.Expr.t ->
  Ctmc.t * stats
(** [max_states] defaults to 2_000_000.  With [hold], stable states
    violating it (and not satisfying the goal) are labelled bad, which
    makes the transient analysis compute the bounded until
    [P(hold U [0,u] goal)]. *)
