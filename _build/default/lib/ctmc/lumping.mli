(** Strong lumping (ordinary lumpability) of a labelled CTMC by
    partition refinement — the state-space reduction role of the Sigref
    step in the paper's baseline pipeline.  The quotient preserves
    time-bounded reachability of the goal label exactly. *)

type result = {
  quotient : Ctmc.t;
  block_of : int array;  (** original state -> block *)
  n_blocks : int;
  refine_seconds : float;
}

val lump : Ctmc.t -> result
