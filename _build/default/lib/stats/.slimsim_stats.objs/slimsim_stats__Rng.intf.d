lib/stats/rng.mli:
