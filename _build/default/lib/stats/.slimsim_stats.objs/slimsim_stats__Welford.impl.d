lib/stats/welford.ml: Bound
