lib/stats/bound.mli:
