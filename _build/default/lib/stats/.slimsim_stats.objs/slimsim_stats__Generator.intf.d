lib/stats/generator.mli: Estimator
