lib/stats/generator.ml: Bound Estimator Float Printf
