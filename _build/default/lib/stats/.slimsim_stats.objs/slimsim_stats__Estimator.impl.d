lib/stats/estimator.ml: Bound Float Fmt
