lib/stats/welford.mli:
