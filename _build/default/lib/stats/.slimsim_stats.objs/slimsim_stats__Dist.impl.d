lib/stats/dist.ml: Array List Rng
