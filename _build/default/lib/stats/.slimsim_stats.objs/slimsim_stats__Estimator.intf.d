lib/stats/estimator.mli: Format
