lib/stats/rng.ml: Int64
