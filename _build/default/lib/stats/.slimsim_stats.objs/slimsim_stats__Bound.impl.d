lib/stats/bound.ml: Array
