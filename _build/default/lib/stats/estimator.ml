type t = { mutable n : int; mutable a : int }

let create () = { n = 0; a = 0 }

let add t outcome =
  t.n <- t.n + 1;
  if outcome then t.a <- t.a + 1

let trials t = t.n
let successes t = t.a

let mean t = if t.n = 0 then 0.0 else float_of_int t.a /. float_of_int t.n

let confidence_interval t ~delta =
  if t.n = 0 then (0.0, 1.0)
  else
    let eps = Bound.hoeffding_eps ~delta ~n:t.n in
    let m = mean t in
    (Float.max 0.0 (m -. eps), Float.min 1.0 (m +. eps))

let merge t1 t2 = { n = t1.n + t2.n; a = t1.a + t2.a }

let pp ppf t = Fmt.pf ppf "%d/%d (%.6f)" t.a t.n (mean t)
