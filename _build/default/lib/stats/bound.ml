let check ~delta ~eps =
  if not (delta > 0.0 && delta < 1.0) then
    invalid_arg "Bound: delta must lie in (0,1)";
  if not (eps > 0.0) then invalid_arg "Bound: eps must be positive"

let chernoff_samples ~delta ~eps =
  check ~delta ~eps;
  int_of_float (ceil (4.0 *. log (2.0 /. delta) /. (eps *. eps)))

let hoeffding_samples ~delta ~eps =
  check ~delta ~eps;
  int_of_float (ceil (log (2.0 /. delta) /. (2.0 *. eps *. eps)))

let hoeffding_eps ~delta ~n =
  if n <= 0 then invalid_arg "Bound.hoeffding_eps: n must be positive";
  sqrt (log (2.0 /. delta) /. (2.0 *. float_of_int n))

let hoeffding_delta ~eps ~n =
  if n <= 0 then invalid_arg "Bound.hoeffding_delta: n must be positive";
  2.0 *. exp (-2.0 *. float_of_int n *. eps *. eps)

(* Acklam's rational approximation to the probit function. *)
let normal_quantile p =
  if not (p > 0.0 && p < 1.0) then
    invalid_arg "Bound.normal_quantile: p must lie in (0,1)";
  let a =
    [| -3.969683028665376e+01; 2.209460984245205e+02; -2.759285104469687e+02;
       1.383577518672690e+02; -3.066479806614716e+01; 2.506628277459239e+00 |]
  and b =
    [| -5.447609879822406e+01; 1.615858368580409e+02; -1.556989798598866e+02;
       6.680131188771972e+01; -1.328068155288572e+01 |]
  and c =
    [| -7.784894002430293e-03; -3.223964580411365e-01; -2.400758277161838e+00;
       -2.549732539343734e+00; 4.374664141464968e+00; 2.938163982698783e+00 |]
  and d =
    [| 7.784695709041462e-03; 3.224671290700398e-01; 2.445134137142996e+00;
       3.754408661907416e+00 |]
  in
  let p_low = 0.02425 in
  let p_high = 1.0 -. p_low in
  if p < p_low then
    let q = sqrt (-2.0 *. log p) in
    (((((c.(0) *. q) +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4)) *. q
    +. c.(5)
    |> fun num ->
    num /. ((((d.(0) *. q +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.0)
  else if p <= p_high then
    let q = p -. 0.5 in
    let r = q *. q in
    ((((((a.(0) *. r) +. a.(1)) *. r +. a.(2)) *. r +. a.(3)) *. r +. a.(4)) *. r
    +. a.(5))
    *. q
    /. (((((b.(0) *. r +. b.(1)) *. r +. b.(2)) *. r +. b.(3)) *. r +. b.(4)) *. r
       +. 1.0)
  else
    let q = sqrt (-2.0 *. log (1.0 -. p)) in
    -.((((((c.(0) *. q) +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4))
       *. q
      +. c.(5))
    /. ((((d.(0) *. q +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.0)

let gauss_samples ~delta ~eps =
  check ~delta ~eps;
  let z = normal_quantile (1.0 -. (delta /. 2.0)) in
  int_of_float (ceil ((z /. (2.0 *. eps)) ** 2.0))
