type t = { mutable n : int; mutable mean : float; mutable m2 : float }

let create () = { n = 0; mean = 0.0; m2 = 0.0 }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean))

let count t = t.n
let mean t = t.mean

let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)

let stddev t = sqrt (variance t)

let confidence_interval t ~delta =
  if t.n = 0 then (neg_infinity, infinity)
  else
    let z = Bound.normal_quantile (1.0 -. (delta /. 2.0)) in
    let half = z *. stddev t /. sqrt (float_of_int t.n) in
    (t.mean -. half, t.mean +. half)
