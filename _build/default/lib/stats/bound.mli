(** A-priori sample-count bounds for quantitative estimation (§II-B).

    The Chernoff–Hoeffding bound guarantees
    [P(|estimate - p| <= eps) >= 1 - delta] after [N] i.i.d. Bernoulli
    samples.  The paper states the (conservative) form
    [N = 4 ln(2/delta) / eps^2]; the tight Hoeffding form is
    [N = ln(2/delta) / (2 eps^2)].  Both are provided; the engine
    defaults to the paper's form so run lengths are comparable. *)

val chernoff_samples : delta:float -> eps:float -> int
(** Paper's bound: [ceil (4 ln(2/delta) / eps^2)].
    Requires [0 < delta < 1] and [eps > 0]. *)

val hoeffding_samples : delta:float -> eps:float -> int
(** Tight bound: [ceil (ln(2/delta) / (2 eps^2))]. *)

val hoeffding_eps : delta:float -> n:int -> float
(** Error bound achieved by [n] samples at confidence [1 - delta]:
    [sqrt (ln(2/delta) / (2 n))]. *)

val hoeffding_delta : eps:float -> n:int -> float
(** Confidence parameter achieved by [n] samples at error [eps]:
    [2 exp (-2 n eps^2)]. *)

val normal_quantile : float -> float
(** [normal_quantile p]: inverse standard-normal CDF (Acklam's
    approximation, |relative error| < 1.15e-9); requires [0 < p < 1]. *)

val gauss_samples : delta:float -> eps:float -> int
(** CLT-based ("Gauss", §III-A) fixed sample count using the worst-case
    Bernoulli variance 1/4: [ceil ((z_{1-delta/2} / (2 eps))^2)]. *)
