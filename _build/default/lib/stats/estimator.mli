(** Running Bernoulli estimator with Hoeffding confidence intervals. *)

type t

val create : unit -> t
val add : t -> bool -> unit
val trials : t -> int
val successes : t -> int

val mean : t -> float
(** Point estimate [A/N]; 0 when no samples yet. *)

val confidence_interval : t -> delta:float -> float * float
(** Hoeffding interval [mean ± eps(N, delta)], clipped to [[0,1]]. *)

val merge : t -> t -> t
(** Combine two independent estimators (for per-worker aggregation). *)

val pp : Format.formatter -> t -> unit
