(** Welford's online mean/variance, for real-valued (weighted) samples
    where the Bernoulli machinery does not apply — e.g. the likelihood
    ratios of importance sampling. *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float
val variance : t -> float
(** Unbiased sample variance; 0 with fewer than two samples. *)

val stddev : t -> float

val confidence_interval : t -> delta:float -> float * float
(** CLT interval [mean ± z_{1-delta/2}·stddev/sqrt n]. *)
