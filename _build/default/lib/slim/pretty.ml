open Ast

let binop_prec = function
  | B_implies -> 1
  | B_or -> 2
  | B_and -> 3
  | B_eq | B_neq | B_lt | B_le | B_gt | B_ge -> 4
  | B_add | B_sub -> 5
  | B_mul | B_div | B_mod -> 6
  | B_min | B_max -> 9

let binop_str = function
  | B_add -> "+" | B_sub -> "-" | B_mul -> "*" | B_div -> "/" | B_mod -> "mod"
  | B_and -> "and" | B_or -> "or" | B_implies -> "=>"
  | B_eq -> "=" | B_neq -> "!=" | B_lt -> "<" | B_le -> "<=" | B_gt -> ">"
  | B_ge -> ">=" | B_min -> "min" | B_max -> "max"

(* Conservative parenthesisation: parenthesise any operand that is itself
   a binary operation of not-strictly-higher precedence. *)
let rec pp_prec prec ppf e =
  match e with
  | E_bool b -> Fmt.bool ppf b
  | E_int n -> if n < 0 then Fmt.pf ppf "(%d)" n else Fmt.int ppf n
  | E_real x ->
    let s = Printf.sprintf "%.17g" x in
    let s = if String.contains s '.' || String.contains s 'e' || String.contains s 'n' then s else s ^ ".0" in
    if x < 0.0 then Fmt.pf ppf "(%s)" s else Fmt.string ppf s
  | E_path p -> Fmt.string ppf (path_to_string p)
  | E_in_mode (p, m) -> Fmt.pf ppf "%s in mode %s" (path_to_string p) m
  | E_unop (U_not, e1) ->
    (* 'not' binds between 'and' and the comparisons in the grammar, so
       as an operand of anything tighter it needs parentheses *)
    let body ppf () = Fmt.pf ppf "not %a" (pp_prec 7) e1 in
    if prec > 4 then Fmt.pf ppf "(%a)" body () else body ppf ()
  | E_unop (U_neg, e1) ->
    (* Parenthesised so that a nested negation never prints "--", which
       would lex as a comment. *)
    Fmt.pf ppf "-(%a)" (pp_prec 0) e1
  | E_binop ((B_min | B_max) as op, e1, e2) ->
    Fmt.pf ppf "%s(%a, %a)" (binop_str op) (pp_prec 0) e1 (pp_prec 0) e2
  | E_binop (op, e1, e2) ->
    let p = binop_prec op in
    (* associativity dictates which operand may reuse the parent's
       precedence level unparenthesized *)
    let lp, rp =
      match op with
      | B_implies -> (p + 1, p) (* right-associative *)
      | B_eq | B_neq | B_lt | B_le | B_gt | B_ge -> (p + 1, p + 1) (* non-assoc *)
      | B_add | B_sub | B_mul | B_div | B_mod | B_and | B_or | B_min | B_max ->
        (p, p + 1) (* left-associative *)
    in
    let body ppf () =
      Fmt.pf ppf "%a %s %a" (pp_prec lp) e1 (binop_str op) (pp_prec rp) e2
    in
    if p < prec then Fmt.pf ppf "(%a)" body () else body ppf ()

let pp_expr ppf e = pp_prec 0 ppf e

let pp_ty ppf ty = Fmt.string ppf (ty_to_string ty)

let pp_feature ppf f =
  let dir = match f.f_dir with In -> "in" | Out -> "out" in
  match f.f_kind with
  | P_event -> Fmt.pf ppf "  %s: %s event port;" f.f_name dir
  | P_data (ty, None) -> Fmt.pf ppf "  %s: %s data port %a;" f.f_name dir pp_ty ty
  | P_data (ty, Some e) ->
    Fmt.pf ppf "  %s: %s data port %a := %a;" f.f_name dir pp_ty ty pp_expr e

let pp_comp_type ppf ct =
  Fmt.pf ppf "%s %s@." (category_to_string ct.ct_category) ct.ct_name;
  if ct.ct_features <> [] then begin
    Fmt.pf ppf "features@.";
    List.iter (fun f -> Fmt.pf ppf "%a@." pp_feature f) ct.ct_features
  end;
  Fmt.pf ppf "end %s;@." ct.ct_name

let pp_subcomp ppf = function
  | Sub_data { sd_name; sd_ty; sd_init; _ } -> (
    match sd_init with
    | None -> Fmt.pf ppf "  %s: data %a;" sd_name pp_ty sd_ty
    | Some e -> Fmt.pf ppf "  %s: data %a := %a;" sd_name pp_ty sd_ty pp_expr e)
  | Sub_comp { sc_name; sc_category; sc_impl = t, i; sc_in_modes; sc_restart; _ }
    ->
    Fmt.pf ppf "  %s: %s %s.%s%s%s;" sc_name (category_to_string sc_category) t i
      (match sc_in_modes with
      | [] -> ""
      | ms -> " in modes (" ^ String.concat ", " ms ^ ")")
      (if sc_restart then " restart" else "")

let pp_connection ppf cn =
  Fmt.pf ppf "  %s -> %s;" (path_to_string cn.cn_src) (path_to_string cn.cn_dst)

let pp_mode ppf m =
  Fmt.pf ppf "  %s:%s mode%s%s;" m.m_name
    (if m.m_initial then " initial" else "")
    (match m.m_invariant with
    | None -> ""
    | Some e -> " while " ^ Fmt.str "%a" pp_expr e)
    (match m.m_derivs with
    | [] -> ""
    | ds ->
      " der "
      ^ String.concat ", "
          (List.map (fun (v, x) -> Printf.sprintf "%s = %.17g" v x) ds))

let pp_effect ppf = function
  | Eff_assign (p, e) -> Fmt.pf ppf "%s := %a" (path_to_string p) pp_expr e
  | Eff_reset p -> Fmt.pf ppf "reset %s" (path_to_string p)

let pp_transition ppf t =
  let trigger =
    match t.t_trigger with
    | Trig_none -> ""
    | Trig_event p -> path_to_string p
    | Trig_rate r -> Printf.sprintf "rate %.17g" r
  in
  let guard =
    match t.t_guard with
    | None -> ""
    | Some e -> (if trigger = "" then "when " else " when ") ^ Fmt.str "%a" pp_expr e
  in
  let effects =
    match t.t_effects with
    | [] -> ""
    | es ->
      let sep = if trigger = "" && guard = "" then "then " else " then " in
      sep ^ String.concat "; " (List.map (Fmt.str "%a" pp_effect) es)
  in
  Fmt.pf ppf "  %s -[%s%s%s]-> %s;" t.t_src trigger guard effects t.t_dst

let pp_comp_impl ppf ci =
  Fmt.pf ppf "%s implementation %s.%s@."
    (category_to_string ci.ci_category)
    ci.ci_type ci.ci_name;
  if ci.ci_subcomps <> [] then begin
    Fmt.pf ppf "subcomponents@.";
    List.iter (fun s -> Fmt.pf ppf "%a@." pp_subcomp s) ci.ci_subcomps
  end;
  if ci.ci_connections <> [] then begin
    Fmt.pf ppf "connections@.";
    List.iter (fun c -> Fmt.pf ppf "%a@." pp_connection c) ci.ci_connections
  end;
  if ci.ci_flows <> [] then begin
    Fmt.pf ppf "flows@.";
    List.iter
      (fun (fl : Ast.flow) ->
        Fmt.pf ppf "  %s := %a;@." fl.fl_target pp_expr fl.fl_expr)
      ci.ci_flows
  end;
  if ci.ci_modes <> [] then begin
    Fmt.pf ppf "modes@.";
    List.iter (fun m -> Fmt.pf ppf "%a@." pp_mode m) ci.ci_modes
  end;
  if ci.ci_transitions <> [] then begin
    Fmt.pf ppf "transitions@.";
    List.iter (fun t -> Fmt.pf ppf "%a@." pp_transition t) ci.ci_transitions
  end;
  Fmt.pf ppf "end %s.%s;@." ci.ci_type ci.ci_name

let pp_error_model ppf em =
  Fmt.pf ppf "error model %s@." em.em_name;
  if em.em_states <> [] then begin
    Fmt.pf ppf "states@.";
    List.iter
      (fun s ->
        Fmt.pf ppf "  %s:%s state;@." s.es_name
          (if s.es_initial then " initial" else ""))
      em.em_states
  end;
  if em.em_events <> [] then begin
    Fmt.pf ppf "events@.";
    List.iter
      (fun e -> Fmt.pf ppf "  %s: occurrence poisson %.17g;@." e.ee_name e.ee_rate)
      em.em_events
  end;
  if em.em_propagations <> [] then begin
    Fmt.pf ppf "propagations@.";
    List.iter
      (fun p ->
        Fmt.pf ppf "  %s: %s propagation;@." p.ep_name
          (match p.ep_dir with In -> "in" | Out -> "out"))
      em.em_propagations
  end;
  if em.em_transitions <> [] then begin
    Fmt.pf ppf "transitions@.";
    List.iter
      (fun t ->
        let trig =
          match t.et_trigger with
          | Etrig_event e -> e
          | Etrig_activation -> "@activation"
          | Etrig_within (None, a, b) -> Printf.sprintf "within %.17g .. %.17g" a b
          | Etrig_within (Some n, a, b) ->
            Printf.sprintf "%s within %.17g .. %.17g" n a b
        in
        Fmt.pf ppf "  %s -[%s]-> %s;@." t.et_src trig t.et_dst)
      em.em_transitions
  end;
  Fmt.pf ppf "end %s;@." em.em_name

let pp_extension ppf ex =
  Fmt.pf ppf "extend %s with %s@."
    (path_to_string ex.ex_target)
    ex.ex_error_model;
  if ex.ex_injections <> [] then begin
    Fmt.pf ppf "injections@.";
    List.iter
      (fun i ->
        Fmt.pf ppf "  inject %s: %s := %a;@." i.inj_state
          (path_to_string i.inj_target)
          pp_expr i.inj_value)
      ex.ex_injections
  end;
  Fmt.pf ppf "end extend;@."

let pp_model ppf m =
  List.iter
    (fun d ->
      (match d with
      | D_comp_type ct -> pp_comp_type ppf ct
      | D_comp_impl ci -> pp_comp_impl ppf ci
      | D_error_model em -> pp_error_model ppf em
      | D_extension ex -> pp_extension ppf ex);
      Fmt.pf ppf "@.")
    m.declarations;
  let t, i = m.root in
  Fmt.pf ppf "root %s.%s;@." t i

let expr_to_string e = Fmt.str "%a" pp_expr e
let model_to_string m = Fmt.str "%a" pp_model m
