lib/slim/ast.ml: List Printf String
