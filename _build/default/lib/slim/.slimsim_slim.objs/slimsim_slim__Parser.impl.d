lib/slim/parser.ml: Array Ast Format Lexer List Printf Token
