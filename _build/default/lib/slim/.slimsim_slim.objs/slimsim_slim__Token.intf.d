lib/slim/token.mli:
