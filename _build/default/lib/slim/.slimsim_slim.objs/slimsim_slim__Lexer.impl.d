lib/slim/lexer.ml: Format List String Token
