lib/slim/instance.mli: Ast Sema
