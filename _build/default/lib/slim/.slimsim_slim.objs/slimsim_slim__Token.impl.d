lib/slim/token.ml: List
