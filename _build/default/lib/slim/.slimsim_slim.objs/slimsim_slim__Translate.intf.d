lib/slim/translate.mli: Ast Sema Slimsim_sta
