lib/slim/instance.ml: Ast Hashtbl List Printf Sema String
