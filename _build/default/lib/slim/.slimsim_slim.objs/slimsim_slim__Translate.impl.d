lib/slim/translate.ml: Array Ast Float Format Hashtbl Instance List Sema Slimsim_sta String
