lib/slim/lexer.mli: Token
