lib/slim/loader.mli: Ast Sema Slimsim_sta
