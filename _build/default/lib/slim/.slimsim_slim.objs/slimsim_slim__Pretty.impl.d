lib/slim/pretty.ml: Ast Fmt List Printf String
