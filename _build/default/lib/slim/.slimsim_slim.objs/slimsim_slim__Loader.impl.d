lib/slim/loader.ml: Ast In_channel Parser Result Sema Slimsim_sta Translate
