lib/slim/sema.ml: Ast Fmt Format Hashtbl List String
