lib/slim/pretty.mli: Ast Format
