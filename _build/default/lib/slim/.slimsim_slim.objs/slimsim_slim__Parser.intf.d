lib/slim/parser.mli: Ast
