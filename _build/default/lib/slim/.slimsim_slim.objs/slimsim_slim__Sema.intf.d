lib/slim/sema.mli: Ast Format Hashtbl
