(** Pretty-printer back to concrete SLIM syntax.  [Parser.parse_model]
    of the printed text yields the same AST (round-trip property, tested
    with qcheck). *)

val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_model : Format.formatter -> Ast.model -> unit
val expr_to_string : Ast.expr -> string
val model_to_string : Ast.model -> string
