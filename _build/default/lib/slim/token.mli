(** Tokens of the SLIM dialect (see [docs/LANGUAGE.md] for the grammar). *)

type t =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | KW of string  (** keywords are stored lowercased *)
  | LPAREN | RPAREN
  | LBRACKET | RBRACKET
  | COLON | SEMI | COMMA | DOT | DOTDOT
  | ASSIGN  (** [:=] *)
  | ARROW  (** [->] *)
  | MINUS | PLUS | STAR | SLASH
  | EQ | NEQ | LT | LE | GT | GE
  | IMPLIES  (** [=>] *)
  | AT  (** [@], for [@activation] *)
  | EOF

val keywords : string list
(** Reserved words; identifiers never collide with them. *)

val is_keyword : string -> bool
val to_string : t -> string

type located = { tok : t; line : int; col : int }
