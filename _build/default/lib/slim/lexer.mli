(** Hand-written lexer for the SLIM dialect.

    Comments run from [--] to end of line (AADL style).  Numeric literals
    never swallow a following [..] (so [0.2 .. 0.3] lexes as expected). *)

exception Lex_error of string * int * int  (** message, line, column *)

val tokenize : string -> Token.located list
(** Tokens of the input, ending with [EOF].  Raises [Lex_error]. *)
