exception Lex_error of string * int * int

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_alnum c = is_alpha c || is_digit c

let tokenize src =
  let n = String.length src in
  let line = ref 1 and col = ref 1 in
  let toks = ref [] in
  let emit tok = toks := { Token.tok; line = !line; col = !col } :: !toks in
  let error fmt =
    Format.kasprintf (fun m -> raise (Lex_error (m, !line, !col))) fmt
  in
  let i = ref 0 in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  let advance k =
    for j = !i to !i + k - 1 do
      if j < n && src.[j] = '\n' then begin
        incr line;
        col := 1
      end
      else incr col
    done;
    i := !i + k
  in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance 1
    else if c = '-' && peek 1 = Some '-' then begin
      (* comment to end of line *)
      while !i < n && src.[!i] <> '\n' do
        advance 1
      done
    end
    else if is_alpha c then begin
      let start = !i in
      let j = ref !i in
      while !j < n && is_alnum src.[!j] do
        incr j
      done;
      let word = String.sub src start (!j - start) in
      let lower = String.lowercase_ascii word in
      if Token.is_keyword lower then emit (Token.KW lower)
      else emit (Token.IDENT word);
      advance (!j - start)
    end
    else if is_digit c then begin
      let start = !i in
      let j = ref !i in
      while !j < n && is_digit src.[!j] do
        incr j
      done;
      let is_float = ref false in
      (* A '.' begins a fraction only if not followed by another '.'. *)
      if !j < n && src.[!j] = '.' && not (!j + 1 < n && src.[!j + 1] = '.') then begin
        is_float := true;
        incr j;
        while !j < n && is_digit src.[!j] do
          incr j
        done
      end;
      if !j < n && (src.[!j] = 'e' || src.[!j] = 'E') then begin
        let k = ref (!j + 1) in
        if !k < n && (src.[!k] = '+' || src.[!k] = '-') then incr k;
        if !k < n && is_digit src.[!k] then begin
          is_float := true;
          while !k < n && is_digit src.[!k] do
            incr k
          done;
          j := !k
        end
      end;
      let text = String.sub src start (!j - start) in
      if !is_float then emit (Token.FLOAT (float_of_string text))
      else emit (Token.INT (int_of_string text));
      advance (!j - start)
    end
    else begin
      let two tok = emit tok; advance 2 in
      let one tok = emit tok; advance 1 in
      match c, peek 1 with
      | ':', Some '=' -> two Token.ASSIGN
      | ':', _ -> one Token.COLON
      | '-', Some '>' -> two Token.ARROW
      | '-', _ -> one Token.MINUS
      | '=', Some '>' -> two Token.IMPLIES
      | '=', _ -> one Token.EQ
      | '!', Some '=' -> two Token.NEQ
      | '<', Some '=' -> two Token.LE
      | '<', _ -> one Token.LT
      | '>', Some '=' -> two Token.GE
      | '>', _ -> one Token.GT
      | '.', Some '.' -> two Token.DOTDOT
      | '.', _ -> one Token.DOT
      | '(', _ -> one Token.LPAREN
      | ')', _ -> one Token.RPAREN
      | '[', _ -> one Token.LBRACKET
      | ']', _ -> one Token.RBRACKET
      | ';', _ -> one Token.SEMI
      | ',', _ -> one Token.COMMA
      | '+', _ -> one Token.PLUS
      | '*', _ -> one Token.STAR
      | '/', _ -> one Token.SLASH
      | '@', _ -> one Token.AT
      | _ -> error "unexpected character %C" c
    end
  done;
  emit Token.EOF;
  List.rev !toks
