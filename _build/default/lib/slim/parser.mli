(** Recursive-descent parser for the SLIM dialect (grammar in
    [docs/LANGUAGE.md]). *)

val parse_model : string -> (Ast.model, string) result
(** Parse a complete model file: declarations plus a [root T.Impl;]
    directive. *)

val parse_expression :
  ?allow_mode_atoms:bool -> string -> (Ast.expr, string) result
(** Parse a standalone expression.  [allow_mode_atoms] additionally
    enables the property-only atom [path in mode m]. *)
