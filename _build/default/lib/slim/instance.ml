type t = {
  path : string list;
  ci : Ast.comp_impl;
  ct : Ast.comp_type;
  in_modes : string list;
  restart : bool;
  subs : (string * t) list;
}

exception Build_error of string

let build (tables : Sema.tables) =
  let rec instantiate path (ci : Ast.comp_impl) in_modes restart =
    let ct =
      match Hashtbl.find_opt tables.comp_types ci.ci_type with
      | Some ct -> ct
      | None -> raise (Build_error ("unknown component type " ^ ci.ci_type))
    in
    let subs =
      List.filter_map
        (function
          | Ast.Sub_data _ -> None
          | Ast.Sub_comp sc -> (
            match Hashtbl.find_opt tables.comp_impls sc.sc_impl with
            | None ->
              let t, i = sc.sc_impl in
              raise (Build_error (Printf.sprintf "unknown implementation %s.%s" t i))
            | Some sub_ci ->
              Some
                ( sc.sc_name,
                  instantiate (path @ [ sc.sc_name ]) sub_ci sc.sc_in_modes
                    sc.sc_restart )))
        ci.ci_subcomps
    in
    { path; ci; ct; in_modes; restart; subs }
  in
  match instantiate [] tables.root_impl [] false with
  | t -> Ok t
  | exception Build_error msg -> Error msg

let rec find t = function
  | [] -> Some t
  | name :: rest -> (
    match List.assoc_opt name t.subs with
    | Some sub -> find sub rest
    | None -> None)

let rec iter f t =
  f t;
  List.iter (fun (_, sub) -> iter f sub) t.subs

let count t =
  let n = ref 0 in
  iter (fun _ -> incr n) t;
  !n

let path_string t =
  match t.path with [] -> "main" | p -> String.concat "." p
