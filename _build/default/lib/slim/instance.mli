(** Instantiation: unfold the root implementation into a tree of
    component instances (the COMPASS "model instance" of §III-A).
    Recursion has already been excluded by {!Sema.analyze}, so the
    unfolding terminates. *)

type t = {
  path : string list;  (** [] for the root *)
  ci : Ast.comp_impl;
  ct : Ast.comp_type;
  in_modes : string list;  (** activation modes within the parent *)
  restart : bool;  (** restart (vs resume) on reactivation *)
  subs : (string * t) list;
}

val build : Sema.tables -> (t, string) result

val find : t -> string list -> t option
(** Look an instance up by path relative to the root. *)

val iter : (t -> unit) -> t -> unit
(** Pre-order traversal. *)

val count : t -> int
val path_string : t -> string
