open Slimsim_sta

type basic_event = {
  be_proc : int;
  be_tr : int;
  be_label : string;
  be_rate : float;
}

type cut_set = basic_event list

type fault_tree = {
  top : string;
  cut_sets : cut_set list;
  max_order : int;
}

let basic_events (net : Network.t) =
  let out = ref [] in
  Array.iteri
    (fun p (proc : Automaton.t) ->
      Array.iteri
        (fun ti (tr : Automaton.transition) ->
          match tr.guard with
          | Automaton.Rate r ->
            out :=
              {
                be_proc = p;
                be_tr = ti;
                be_label =
                  Fmt.str "%s: %s -> %s" proc.proc_name
                    proc.locations.(tr.src).loc_name
                    proc.locations.(tr.dst).loc_name;
                be_rate = r;
              }
              :: !out
          | Automaton.Guard _ -> ())
        proc.transitions)
    net.procs;
  List.rev !out

(* Immediately enabled guarded moves (the untimed abstraction). *)
let immediate net s =
  Moves.discrete net s
  |> List.filter_map (fun { Moves.move; window } ->
         if Moves.I.mem 0.0 window then Some move else None)

exception Search_limit of string

(* All stable states reachable from [s] by immediate moves (all
   branches).  Cycles are cut off rather than reported: a cycling branch
   contributes no stable state. *)
let closure net budget s =
  let out = ref [] in
  let rec go s on_path =
    decr budget;
    if !budget < 0 then raise (Search_limit "closure budget exhausted");
    match immediate net s with
    | [] -> out := s :: !out
    | moves ->
      let k = State.hash_key s in
      if not (List.mem k on_path) then
        List.iter (fun mv -> go (Moves.apply net s mv) (k :: on_path)) moves
  in
  go s [];
  !out

module Key_set = Set.Make (struct
  type t = int * int

  let compare = compare
end)

let set_key cs = List.map (fun e -> (e.be_proc, e.be_tr)) cs |> Key_set.of_list

let is_superset_of_any mcs keys =
  List.exists (fun (found, _) -> Key_set.subset found keys) mcs

let minimal_cut_sets ?(max_order = 3) ?(max_expansions = 200_000)
    (net : Network.t) ~goal =
  let events = basic_events net in
  let budget = ref max_expansions in
  try
    let initial = closure net budget (State.initial net) in
    if List.exists (fun s -> State.eval_bool s goal) initial then
      (* the top event can occur without any fault *)
      Ok [ [] ]
    else begin
      (* frontier: stable states with the event set that produced them *)
      let mcs = ref [] in
      let frontier = ref (List.map (fun s -> (s, Key_set.empty, [])) initial) in
      for _order = 1 to max_order do
        let next = ref [] in
        let seen = Hashtbl.create 256 in
        List.iter
          (fun (s, keys, used) ->
            if not (is_superset_of_any !mcs keys) then
              List.iter
                (fun (p, ti, _rate) ->
                  let k = (p, ti) in
                  if not (Key_set.mem k keys) then begin
                    let ev =
                      List.find
                        (fun e -> e.be_proc = p && e.be_tr = ti)
                        events
                    in
                    let keys' = Key_set.add k keys in
                    if not (is_superset_of_any !mcs keys') then begin
                      decr budget;
                      if !budget < 0 then
                        raise (Search_limit "expansion budget exhausted");
                      let s' =
                        Moves.apply net s (Moves.Local { proc = p; tr = ti })
                      in
                      let stables = closure net budget s' in
                      let hit =
                        List.exists (fun st -> State.eval_bool st goal) stables
                      in
                      if hit then begin
                        (* drop any previously queued superset work *)
                        mcs := (keys', ev :: used) :: !mcs
                      end
                      else
                        List.iter
                          (fun st ->
                            let memo_key = (State.hash_key st, Key_set.elements keys') in
                            if not (Hashtbl.mem seen memo_key) then begin
                              Hashtbl.add seen memo_key ();
                              next := (st, keys', ev :: used) :: !next
                            end)
                          stables
                    end
                  end)
                (Moves.markovian net s))
          !frontier;
        frontier := !next
      done;
      (* normalize: sort each set, drop non-minimal ones *)
      let sets =
        List.map (fun (_, used) -> List.sort compare used) !mcs
        |> List.sort_uniq compare
      in
      let keyed = List.map (fun cs -> (set_key cs, cs)) sets in
      let minimal =
        List.filter
          (fun (k, _) ->
            not
              (List.exists
                 (fun (k', _) -> (not (Key_set.equal k k')) && Key_set.subset k' k)
                 keyed))
          keyed
        |> List.map snd
        |> List.sort (fun a b ->
               compare (List.length a, a) (List.length b, b))
      in
      Ok minimal
    end
  with Search_limit msg -> Error msg

let fault_tree ?max_order net ~goal ~top =
  match minimal_cut_sets ?max_order net ~goal with
  | Error e -> Error e
  | Ok cut_sets ->
    Ok { top; cut_sets; max_order = Option.value ~default:3 max_order }

let event_probability e ~horizon = 1.0 -. exp (-.e.be_rate *. horizon)

let cut_set_probability cs ~horizon =
  List.fold_left (fun acc e -> acc *. event_probability e ~horizon) 1.0 cs

let top_probability cut_sets ~horizon =
  1.0
  -. List.fold_left
       (fun acc cs -> acc *. (1.0 -. cut_set_probability cs ~horizon))
       1.0 cut_sets

let pp_fault_tree ppf t =
  Fmt.pf ppf "@[<v>top event: %s@," t.top;
  if t.cut_sets = [] then
    Fmt.pf ppf "  no cut sets up to order %d@," t.max_order
  else
    List.iteri
      (fun i cs ->
        Fmt.pf ppf "  MCS %d (order %d):@," (i + 1) (List.length cs);
        List.iter (fun e -> Fmt.pf ppf "    %s (rate %g)@," e.be_label e.be_rate) cs)
      t.cut_sets;
  Fmt.pf ppf "@]"

let to_dot t =
  let b = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "digraph fault_tree {\n  rankdir=BT;\n";
  pf "  top [label=%S shape=box style=filled fillcolor=salmon];\n" t.top;
  pf "  or [label=\"OR\" shape=invtriangle];\n  or -> top;\n";
  List.iteri
    (fun i cs ->
      pf "  and%d [label=\"AND\" shape=triangle];\n  and%d -> or;\n" i i;
      List.iter
        (fun e ->
          let id =
            Printf.sprintf "be_%d_%d" e.be_proc e.be_tr
          in
          pf "  %s [label=\"%s\\nrate %g\" shape=circle];\n" id
            (String.map (function '"' -> '\'' | c -> c) e.be_label)
            e.be_rate;
          pf "  %s -> and%d;\n" id i)
        cs)
    t.cut_sets;
  pf "}\n";
  Buffer.contents b
