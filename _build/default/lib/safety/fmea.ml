open Slimsim_sta

type row = {
  component : string;
  failure_mode : string;
  rate : float;
  local_effects : (string * string * string) list;
  leads_to_failure : bool;
}

let immediate net s =
  Moves.discrete net s
  |> List.filter_map (fun { Moves.move; window } ->
         if Moves.I.mem 0.0 window then Some move else None)

exception Limit

let closure net budget s =
  let out = ref [] in
  let rec go s on_path =
    decr budget;
    if !budget < 0 then raise Limit;
    match immediate net s with
    | [] -> out := s :: !out
    | moves ->
      let k = State.hash_key s in
      if not (List.mem k on_path) then
        List.iter (fun mv -> go (Moves.apply net s mv) (k :: on_path)) moves
  in
  go s [];
  !out

let analyze ?(max_expansions = 100_000) (net : Network.t) ~goal =
  let budget = ref max_expansions in
  try
    let base =
      match closure net budget (State.initial net) with
      | s :: _ -> s
      | [] -> State.initial net
    in
    let rows =
      Cutsets.basic_events net
      |> List.map (fun (e : Cutsets.basic_event) ->
             let after_event =
               Moves.apply net base
                 (Moves.Local { proc = e.Cutsets.be_proc; tr = e.Cutsets.be_tr })
             in
             let consequences = closure net budget after_event in
             let witness = match consequences with s :: _ -> s | [] -> after_event in
             let local_effects =
               Array.to_list net.vars
               |> List.mapi (fun i (vi : Network.var_info) ->
                      let before = base.State.vals.(i)
                      and after = witness.State.vals.(i) in
                      if Value.equal before after then None
                      else
                        Some
                          ( vi.var_name,
                            Value.to_string before,
                            Value.to_string after ))
               |> List.filter_map Fun.id
             in
             let leads_to_failure =
               List.exists (fun s -> State.eval_bool s goal) consequences
             in
             {
               component = Network.proc_name net e.Cutsets.be_proc;
               failure_mode = e.Cutsets.be_label;
               rate = e.Cutsets.be_rate;
               local_effects;
               leads_to_failure;
             })
    in
    Ok rows
  with Limit -> Error "FMEA expansion budget exhausted"

let pp_table ppf rows =
  Fmt.pf ppf "@[<v>%-28s %-44s %-10s %-8s %s@," "component" "failure mode" "rate"
    "failure" "effects";
  List.iter
    (fun r ->
      Fmt.pf ppf "%-28s %-44s %-10g %-8s %s@," r.component r.failure_mode r.rate
        (if r.leads_to_failure then "SYSTEM" else "-")
        (String.concat ", "
           (List.map
              (fun (v, b, a) -> Printf.sprintf "%s: %s->%s" v b a)
              r.local_effects)))
    rows;
  Fmt.pf ppf "@]"
