lib/safety/fmea.ml: Array Cutsets Fmt Fun List Moves Network Printf Slimsim_sta State String Value
