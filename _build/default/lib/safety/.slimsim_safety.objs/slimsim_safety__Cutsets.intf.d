lib/safety/cutsets.mli: Format Slimsim_sta
