lib/safety/fdir.ml: Array Automaton Cutsets Float Fmt List Moves Network Printf Slimsim_sta State String Value
