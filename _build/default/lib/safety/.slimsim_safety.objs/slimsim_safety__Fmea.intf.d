lib/safety/fmea.mli: Format Slimsim_sta
