lib/safety/diagnosability.ml: Array Automaton Fmt Hashtbl List Moves Network Printf Slimsim_sta State String Value
