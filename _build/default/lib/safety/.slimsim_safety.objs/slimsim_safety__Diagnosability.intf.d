lib/safety/diagnosability.mli: Format Slimsim_sta
