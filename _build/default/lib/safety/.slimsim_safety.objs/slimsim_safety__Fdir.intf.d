lib/safety/fdir.mli: Cutsets Format Slimsim_sta
