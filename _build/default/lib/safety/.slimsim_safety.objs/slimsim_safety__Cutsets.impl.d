lib/safety/cutsets.ml: Array Automaton Buffer Fmt Hashtbl List Moves Network Option Printf Set Slimsim_sta State String
