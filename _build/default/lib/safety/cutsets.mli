(** Safety analysis (the COMPASS capability of §II-C): fault-tree
    generation as minimal cut sets, with probabilistic evaluation.

    Basic events are the exponential (rate) transitions of the network —
    in an extended model these are exactly the error models' occurrence
    events.  A cut set is a set of basic events whose occurrence *can*
    drive the system into the top-level event (the goal expression);
    a minimal cut set has no proper subset with that property.

    The computation works on the untimed abstraction of the model: after
    each injected fault, immediately enabled guarded moves are closed
    over exhaustively (all branches), but timed guards that need a delay
    to open are not awaited.  For untimed models the abstraction is
    exact; for timed models it is the standard possibilistic fault-tree
    reading. *)

type basic_event = {
  be_proc : int;  (** process carrying the rate transition *)
  be_tr : int;  (** transition index within the process *)
  be_label : string;  (** e.g. ["gps#GPSFail: ok -> transient"] *)
  be_rate : float;
}

type cut_set = basic_event list
(** Sorted by (process, transition); treated as a set. *)

type fault_tree = {
  top : string;  (** description of the top-level event *)
  cut_sets : cut_set list;  (** minimal cut sets, shortest first *)
  max_order : int;  (** the search bound that produced them *)
}

val basic_events : Slimsim_sta.Network.t -> basic_event list
(** All rate transitions of the network, in (process, transition)
    order. *)

val minimal_cut_sets :
  ?max_order:int ->
  ?max_expansions:int ->
  Slimsim_sta.Network.t ->
  goal:Slimsim_sta.Expr.t ->
  (cut_set list, string) result
(** Minimal cut sets of order up to [max_order] (default 3).
    [max_expansions] (default 200_000) bounds the search.  An error is
    returned when the immediate closure diverges or the bound is hit. *)

val fault_tree :
  ?max_order:int ->
  Slimsim_sta.Network.t ->
  goal:Slimsim_sta.Expr.t ->
  top:string ->
  (fault_tree, string) result

val cut_set_probability : cut_set -> horizon:float -> float
(** [Π (1 - e^{-λ·horizon})] over the set's events: the probability that
    every event of the (independent-fault) set occurs within the
    horizon. *)

val top_probability : cut_set list -> horizon:float -> float
(** The Esary–Proschan upper approximation
    [1 - Π (1 - P(CSᵢ))]; exact when the cut sets are disjoint, an
    upper bound (to first order) otherwise. *)

val pp_fault_tree : Format.formatter -> fault_tree -> unit
(** Render as top = OR of ANDs. *)

val to_dot : fault_tree -> string
(** Graphviz rendering of the fault tree. *)
