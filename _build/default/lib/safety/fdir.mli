(** FDIR analysis (§II-C): can fault conditions be Detected, Isolated
    and Recovered from?

    COMPASS bases this on *observables* — Boolean elements of the model
    visible to the FDIR logic.  Here the observables are a user-chosen
    set of variables (typically the observed [#inj] views of output
    ports).  For each failure mode (basic event):

    - {b detected}: some observable differs from its nominal value after
      the fault (and the immediate reactions to it);
    - {b isolated}: the failure's observable signature differs from
      every other failure mode's signature, so the FDIR logic can tell
      which fault occurred;
    - {b recovered}: resetting the subtree that hosts the failed error
      automaton (the model's own @activation machinery) restores every
      observable to its nominal value.

    The analysis works on the untimed abstraction, like fault-tree
    generation. *)

type verdict = {
  event : Cutsets.basic_event;
  detected : bool;
  isolated : bool;
  recovered : bool;
  signature : (string * string) list;
      (** observables that deviate, with their deviant values *)
}

val analyze :
  ?max_expansions:int ->
  ?settle_time:float ->
  Slimsim_sta.Network.t ->
  observables:string list ->
  (verdict list, string) result
(** [observables] are variable names (the observed [#inj] view is
    substituted automatically when it exists); unknown names are an
    error.  [settle_time] (default 0) lets the fault-free model run
    its deterministic ASAP schedule for that long before the baseline
    is taken, and again after the recovery reset — so timed
    initialization (signal acquisition) and timed self-repairs count. *)

val pp_table : Format.formatter -> verdict list -> unit
