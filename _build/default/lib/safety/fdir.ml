open Slimsim_sta

type verdict = {
  event : Cutsets.basic_event;
  detected : bool;
  isolated : bool;
  recovered : bool;
  signature : (string * string) list;
}

let immediate net s =
  Moves.discrete net s
  |> List.filter_map (fun { Moves.move; window } ->
         if Moves.I.mem 0.0 window then Some move else None)

exception Limit

let closure net budget s =
  let out = ref [] in
  let rec go s on_path =
    decr budget;
    if !budget < 0 then raise Limit;
    match immediate net s with
    | [] -> out := s :: !out
    | moves ->
      let k = State.hash_key s in
      if not (List.mem k on_path) then
        List.iter (fun mv -> go (Moves.apply net s mv) (k :: on_path)) moves
  in
  go s [];
  !out

let witness net budget s =
  match closure net budget s with s' :: _ -> s' | [] -> s

(* Deterministic fault-free settling: advance along the ASAP schedule of
   guarded moves (rate transitions suppressed) until quiescence or the
   settle horizon.  This lets timed initialization (e.g. the GPS
   acquisition window) and timed self-repairs complete so that verdicts
   are judged against the operational nominal state. *)
let settle net budget horizon s =
  let eps = 1e-9 in
  let rec go s iterations =
    decr budget;
    if !budget < 0 then raise Limit;
    if iterations > 10_000 || s.State.time >= horizon then s
    else begin
      let timed = Moves.discrete net s in
      let first =
        List.filter_map
          (fun tm -> Moves.I.first_point ~eps tm.Moves.window)
          timed
        |> List.fold_left Float.min infinity
      in
      if first = infinity || s.State.time +. first > horizon then s
      else
        match Moves.enabled_after net s first timed with
        | [] -> State.advance net s (Float.max first eps)
        | mv :: _ -> go (Moves.apply net s ~delay:first mv) (iterations + 1)
    end
  in
  go s 0

(* The host instance path of a process: "a.b#EM" and "a.b" both live in
   the subtree rooted at "a.b". *)
let host_path name =
  match String.index_opt name '#' with
  | Some i -> String.sub name 0 i
  | None -> name

let prefixes path =
  (* "a.b.c" -> ["a.b.c"; "a.b"; "a"] *)
  let parts = String.split_on_char '.' path in
  let rec go = function
    | [] -> []
    | parts ->
      String.concat "." parts
      :: go (List.rev (List.tl (List.rev parts)))
  in
  go parts

(* The model's own recovery action for the subtree hosting [proc]: the
   innermost reset event covering it, if the model has one. *)
let reset_event_for (net : Network.t) proc =
  let host = host_path (Network.proc_name net proc) in
  List.find_map
    (fun prefix ->
      let name = "reset:" ^ prefix in
      let rec find e =
        if e >= Array.length net.events then None
        else if net.events.(e) = name then Some (e, prefix)
        else find (e + 1)
      in
      find 0)
    (prefixes host)

let in_subtree net prefix p =
  let name = Network.proc_name net p in
  name = prefix
  || (String.length name > String.length prefix
     && String.sub name 0 (String.length prefix) = prefix
     && (name.[String.length prefix] = '.' || name.[String.length prefix] = '#'))

(* Fire the reset synchronization restricted to the covered subtree (the
   resetter's own move is hypothetical in this analysis). *)
let apply_reset (net : Network.t) s (ev, prefix) =
  let parts = ref [] in
  Array.iteri
    (fun p (proc : Automaton.t) ->
      if in_subtree net prefix p then
        match
          List.find_opt
            (fun ti ->
              proc.transitions.(ti).Automaton.label = Automaton.Event ev)
            proc.outgoing.(s.State.locs.(p))
        with
        | Some ti -> parts := (p, ti) :: !parts
        | None -> ())
    net.procs;
  if !parts = [] then s
  else Moves.apply net s (Moves.Sync { event = ev; parts = List.rev !parts })

let analyze ?(max_expansions = 100_000) ?(settle_time = 0.0) (net : Network.t)
    ~observables =
  let budget = ref max_expansions in
  let resolve name =
    match Network.find_var net (name ^ "#inj") with
    | Some v -> Ok (name, v)
    | None -> (
      match Network.find_var net name with
      | Some v -> Ok (name, v)
      | None -> Error (Printf.sprintf "unknown observable %s" name))
  in
  let rec resolve_all = function
    | [] -> Ok []
    | n :: rest -> (
      match resolve n with
      | Error e -> Error e
      | Ok x -> ( match resolve_all rest with Ok xs -> Ok (x :: xs) | e -> e))
  in
  match resolve_all observables with
  | Error e -> Error e
  | Ok obs -> (
    try
      let base =
        let s = witness net budget (State.initial net) in
        if settle_time > 0.0 then settle net budget settle_time s else s
      in
      let signature_of s =
        List.filter_map
          (fun (name, v) ->
            if Value.equal base.State.vals.(v) s.State.vals.(v) then None
            else Some (name, Value.to_string s.State.vals.(v)))
          obs
      in
      let raw =
        Cutsets.basic_events net
        |> List.map (fun (e : Cutsets.basic_event) ->
               let after =
                 witness net budget
                   (Moves.apply net base
                      (Moves.Local { proc = e.Cutsets.be_proc; tr = e.Cutsets.be_tr }))
               in
               let signature = signature_of after in
               let recovered =
                 match reset_event_for net e.Cutsets.be_proc with
                 | None -> false
                 | Some reset ->
                   let s' = witness net budget (apply_reset net after reset) in
                   let s' =
                     if settle_time > 0.0 then
                       settle net budget (s'.State.time +. settle_time) s'
                     else s'
                   in
                   signature_of s' = []
               in
               (e, signature, recovered))
      in
      let verdicts =
        List.map
          (fun (e, signature, recovered) ->
            let detected = signature <> [] in
            let isolated =
              detected
              && not
                   (List.exists
                      (fun (e', sg', _) ->
                        e' != e && sg' = signature)
                      raw)
            in
            { event = e; detected; isolated; recovered; signature })
          raw
      in
      Ok verdicts
    with Limit -> Error "FDIR expansion budget exhausted")

let pp_table ppf verdicts =
  Fmt.pf ppf "@[<v>%-44s %-9s %-9s %-10s %s@," "failure mode" "detected"
    "isolated" "recovered" "signature";
  List.iter
    (fun v ->
      Fmt.pf ppf "%-44s %-9s %-9s %-10s %s@," v.event.Cutsets.be_label
        (if v.detected then "yes" else "NO")
        (if v.isolated then "yes" else "NO")
        (if v.recovered then "yes" else "NO")
        (String.concat ", "
           (List.map (fun (n, x) -> Printf.sprintf "%s=%s" n x) v.signature)))
    verdicts;
  Fmt.pf ppf "@]"
