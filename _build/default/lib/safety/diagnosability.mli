(** Diagnosability analysis (§II-C): "a property expressing the
    diagnosis must either always or never hold in any two states with
    the same set of observations".

    The analysis enumerates the reachable stable states of the untimed
    abstraction (faults injected in every combination up to a bound,
    reactions closed over), groups them by the valuation of the
    observable variables, and reports every observation class that
    contains both diagnosis-positive and diagnosis-negative states —
    i.e. observations from which the diagnosis cannot be decided. *)

type ambiguity = {
  observation : (string * string) list;  (** the shared observable valuation *)
  positive_witness : string;  (** a state description where the diagnosis holds *)
  negative_witness : string;  (** one where it does not *)
}

type report = {
  diagnosable : bool;
  states_explored : int;
  classes : int;  (** distinct observation classes *)
  ambiguities : ambiguity list;
}

val check :
  ?max_faults:int ->
  ?max_expansions:int ->
  Slimsim_sta.Network.t ->
  observables:string list ->
  diagnosis:Slimsim_sta.Expr.t ->
  (report, string) result
(** [max_faults] (default 2) bounds how many basic events are injected
    per explored scenario.  The observed [#inj] views are substituted
    for the observables automatically, as in {!Fdir.analyze}. *)

val pp_report : Format.formatter -> report -> unit
