open Slimsim_sta

type ambiguity = {
  observation : (string * string) list;
  positive_witness : string;
  negative_witness : string;
}

type report = {
  diagnosable : bool;
  states_explored : int;
  classes : int;
  ambiguities : ambiguity list;
}

let immediate net s =
  Moves.discrete net s
  |> List.filter_map (fun { Moves.move; window } ->
         if Moves.I.mem 0.0 window then Some move else None)

exception Limit

let closure net budget s =
  let out = ref [] in
  let rec go s on_path =
    decr budget;
    if !budget < 0 then raise Limit;
    match immediate net s with
    | [] -> out := s :: !out
    | moves ->
      let k = State.hash_key s in
      if not (List.mem k on_path) then
        List.iter (fun mv -> go (Moves.apply net s mv) (k :: on_path)) moves
  in
  go s [];
  !out

let describe_state (net : Network.t) s =
  Array.to_list net.procs
  |> List.mapi (fun p (proc : Automaton.t) ->
         Printf.sprintf "%s@%s" proc.proc_name
           proc.locations.(s.State.locs.(p)).Automaton.loc_name)
  |> String.concat ", "

let check ?(max_faults = 2) ?(max_expansions = 200_000) (net : Network.t)
    ~observables ~diagnosis =
  let budget = ref max_expansions in
  let resolve name =
    match Network.find_var net (name ^ "#inj") with
    | Some v -> Ok (name, v)
    | None -> (
      match Network.find_var net name with
      | Some v -> Ok (name, v)
      | None -> Error (Printf.sprintf "unknown observable %s" name))
  in
  let rec resolve_all = function
    | [] -> Ok []
    | n :: rest -> (
      match resolve n with
      | Error e -> Error e
      | Ok x -> ( match resolve_all rest with Ok xs -> Ok (x :: xs) | e -> e))
  in
  match resolve_all observables with
  | Error e -> Error e
  | Ok obs -> (
    try
      (* BFS over stable states, injecting up to [max_faults] basic
         events; deduplicate on the timeless state key *)
      let seen = Hashtbl.create 256 in
      let all_states = ref [] in
      let frontier = ref [] in
      let push s =
        let k = State.hash_key s in
        if not (Hashtbl.mem seen k) then begin
          Hashtbl.add seen k ();
          all_states := s :: !all_states;
          frontier := s :: !frontier
        end
      in
      List.iter push (closure net budget (State.initial net));
      for _round = 1 to max_faults do
        let current = !frontier in
        frontier := [];
        List.iter
          (fun s ->
            List.iter
              (fun (p, ti, _) ->
                let s' = Moves.apply net s (Moves.Local { proc = p; tr = ti }) in
                List.iter push (closure net budget s'))
              (Moves.markovian net s))
          current
      done;
      (* group by observation *)
      let classes = Hashtbl.create 64 in
      List.iter
        (fun s ->
          let key =
            List.map (fun (_, v) -> Value.to_string s.State.vals.(v)) obs
          in
          let prev =
            match Hashtbl.find_opt classes key with Some l -> l | None -> []
          in
          Hashtbl.replace classes key (s :: prev))
        !all_states;
      let ambiguities = ref [] in
      Hashtbl.iter
        (fun _key states ->
          let pos = List.filter (fun s -> State.eval_bool s diagnosis) states
          and neg =
            List.filter (fun s -> not (State.eval_bool s diagnosis)) states
          in
          match pos, neg with
          | p :: _, n :: _ ->
            ambiguities :=
              {
                observation =
                  List.map
                    (fun (name, v) ->
                      (name, Value.to_string p.State.vals.(v)))
                    obs;
                positive_witness = describe_state net p;
                negative_witness = describe_state net n;
              }
              :: !ambiguities
          | _ -> ())
        classes;
      Ok
        {
          diagnosable = !ambiguities = [];
          states_explored = List.length !all_states;
          classes = Hashtbl.length classes;
          ambiguities = !ambiguities;
        }
    with Limit -> Error "diagnosability expansion budget exhausted")

let pp_report ppf r =
  Fmt.pf ppf "@[<v>%s (%d states, %d observation classes)@,"
    (if r.diagnosable then "diagnosable" else "NOT diagnosable")
    r.states_explored r.classes;
  List.iter
    (fun a ->
      Fmt.pf ppf "ambiguous observation {%s}:@,  diagnosis holds:   %s@,  diagnosis fails:   %s@,"
        (String.concat ", "
           (List.map (fun (n, v) -> Printf.sprintf "%s=%s" n v) a.observation))
        a.positive_witness a.negative_witness)
    r.ambiguities;
  Fmt.pf ppf "@]"
