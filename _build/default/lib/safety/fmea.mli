(** FMEA (Failure Mode and Effects Analysis) table generation — the
    second safety-analysis artifact of COMPASS (§II-C).

    For every basic event (failure mode) of the model, the analysis
    injects just that event from the initial configuration, closes over
    the immediately enabled reactions, and reports the observable
    effects: which variables changed, and whether the system-level
    failure condition holds. *)

type row = {
  component : string;  (** process carrying the failure mode *)
  failure_mode : string;  (** transition description *)
  rate : float;
  local_effects : (string * string * string) list;
      (** (variable, before, after); only changed variables *)
  leads_to_failure : bool;
      (** the goal holds in some immediate consequence state *)
}

val analyze :
  ?max_expansions:int ->
  Slimsim_sta.Network.t ->
  goal:Slimsim_sta.Expr.t ->
  (row list, string) result

val pp_table : Format.formatter -> row list -> unit
