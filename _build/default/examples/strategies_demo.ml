(* Strategy semantics on a single non-deterministic window.

   The nominal GPS acquires a fix at some time in [10, 120] s (guard
   x >= 10, invariant x <= 120).  Each automated strategy resolves the
   window differently — ASAP at 10, MaxTime at 120, Progressive
   uniformly over the guard's window, Local uniformly over the
   invariant's — and the scripted Input strategy (the paper's
   interactive mode) lets a program drive the choice explicitly.

   Run with:  dune exec examples/strategies_demo.exe *)

module Strategy = Slimsim_sim.Strategy
module I = Slimsim_intervals.Interval_set

let property = "P(<> [0, 200] measurement)"

let () =
  let model =
    match Slimsim.load_string Slimsim_models.Gps.nominal_only with
    | Ok m -> m
    | Error e -> failwith e
  in
  Fmt.pr "acquisition window [10, 120]; fix acquired at:@.";
  List.iter
    (fun strategy ->
      match Slimsim.simulate_one model ~property ~strategy ~seed:3L with
      | Ok (Slimsim_sim.Path.Sat t, _) ->
        Fmt.pr "  %-12s t = %g@." (Strategy.to_string strategy) t
      | Ok (v, _) ->
        Fmt.pr "  %-12s %s@." (Strategy.to_string strategy)
          (Slimsim_sim.Path.verdict_to_string v)
      | Error e -> Fmt.pr "  %-12s error: %s@." (Strategy.to_string strategy) e)
    Strategy.all_automated;
  (* The Input strategy as a deterministic script: always pick the first
     available move, exactly in the middle of its window. *)
  let script (alt : Strategy.alternatives) =
    match alt.Strategy.timed with
    | tm :: _ -> (
      let w = tm.Slimsim_sta.Moves.window in
      match I.inf w, I.sup w with
      | I.Fin (a, _), I.Fin (b, _) ->
        Strategy.Fire { index = 0; delay = a +. ((b -. a) /. 2.0) }
      | I.Fin (a, _), _ -> Strategy.Fire { index = 0; delay = a }
      | _ -> Strategy.Abort)
    | [] -> Strategy.Abort
  in
  match
    Slimsim.simulate_one model ~property ~strategy:(Strategy.Scripted script)
      ~seed:3L
  with
  | Ok (Slimsim_sim.Path.Sat t, _) ->
    Fmt.pr "  %-12s t = %g  (scripted midpoint)@." "input" t
  | Ok (v, _) -> Fmt.pr "  input: %s@." (Slimsim_sim.Path.verdict_to_string v)
  | Error e -> Fmt.pr "  input error: %s@." e
