examples/strategies_demo.mli:
