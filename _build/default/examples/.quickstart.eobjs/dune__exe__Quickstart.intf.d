examples/quickstart.mli:
