examples/safety_analysis.mli:
