examples/launcher_study.ml: Fmt List Printf Slimsim Slimsim_models Slimsim_sta
