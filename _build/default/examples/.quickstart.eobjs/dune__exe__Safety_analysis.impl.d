examples/safety_analysis.ml: Fmt Slimsim Slimsim_models Slimsim_safety
