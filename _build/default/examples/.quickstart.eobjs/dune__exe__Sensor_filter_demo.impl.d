examples/sensor_filter_demo.ml: Fmt List Printf Slimsim Slimsim_models
