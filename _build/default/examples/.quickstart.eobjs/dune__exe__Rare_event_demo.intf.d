examples/rare_event_demo.mli:
