examples/launcher_study.mli:
