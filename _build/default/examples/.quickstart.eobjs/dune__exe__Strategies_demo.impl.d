examples/strategies_demo.ml: Fmt List Slimsim Slimsim_intervals Slimsim_models Slimsim_sim Slimsim_sta
