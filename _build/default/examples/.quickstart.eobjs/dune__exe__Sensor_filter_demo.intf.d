examples/sensor_filter_demo.mli:
