examples/rare_event_demo.ml: Array Fmt List Printf Slimsim Slimsim_models Slimsim_sim Slimsim_sta
