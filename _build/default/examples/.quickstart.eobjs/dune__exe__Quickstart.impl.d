examples/quickstart.ml: Fmt List Slimsim Slimsim_models Slimsim_sim Slimsim_sta
