(* Rare-event estimation (importance sampling, §VI related work) and the
   M/M/1/K queue substrate.

   Run with:  dune exec examples/rare_event_demo.exe *)

module Rare = Slimsim_sim.Rare
module Strategy = Slimsim_sim.Strategy
module Qm = Slimsim_models.Queue_model

let load src =
  match Slimsim.load_string src with Ok m -> m | Error e -> failwith e

let () =
  (* an underloaded queue almost never fills up: a genuine rare event *)
  let capacity = 6 in
  let model = load (Qm.source ~arrival:0.3 ~service:1.2 ~capacity) in
  let net = Slimsim.network model in
  let property = Printf.sprintf "P(<> [0, 20] %s)" (Qm.goal_full ~capacity) in
  let goal, _, horizon =
    match Slimsim.parse_property model property with
    | Ok r -> r
    | Error e -> failwith e
  in
  (* ground truth from the exact pipeline *)
  let exact =
    match Slimsim.check_exact model ~property with
    | Ok r -> r.Slimsim.exact_probability
    | Error e -> failwith e
  in
  Fmt.pr "M/M/1/%d, arrival 0.3 / service 1.2: P(full by 20) = %.3e (exact)@."
    capacity exact;
  (* selective failure biasing: speed up only the arrivals.  In the
     queue's birth-death process the arrival transitions are the ones
     whose target has a larger q; identify them structurally. *)
  let arrivals_only beta p tr =
    let proc = net.Slimsim_sta.Network.procs.(p) in
    let t = proc.Slimsim_sta.Automaton.transitions.(tr) in
    if t.Slimsim_sta.Automaton.dst > t.Slimsim_sta.Automaton.src then beta
    else 1.0
  in
  Fmt.pr "@.plain Monte Carlo vs selective arrival biasing, 20000 paths each:@.";
  (match
     Rare.estimate net ~goal ~horizon ~strategy:Strategy.Asap ~bias:1.0
       ~paths:20_000 ~delta:0.05 ()
   with
  | Ok r -> Fmt.pr "  plain       %a@." Rare.pp_result r
  | Error e -> failwith (Slimsim_sim.Path.error_to_string e));
  List.iter
    (fun beta ->
      match
        Rare.estimate net ~goal ~horizon ~strategy:Strategy.Asap ~bias:1.0
          ~bias_of:(arrivals_only beta) ~paths:20_000 ~delta:0.05 ()
      with
      | Ok r -> Fmt.pr "  arrivals x%g %a@." beta Rare.pp_result r
      | Error e -> failwith (Slimsim_sim.Path.error_to_string e))
    [ 2.0; 4.0 ];
  Fmt.pr
    "@.(only the arrival rates are biased: the queue actually fills under@.";
  Fmt.pr
    " the biased measure, and the likelihood ratio keeps the estimate@.";
  Fmt.pr " unbiased; scaling every rate uniformly would leave the embedded@.";
  Fmt.pr " chain unchanged and only inflate the weight variance)@."
