(* The §IV redundancy benchmark in miniature: for growing redundancy
   degree, compare the exact CTMC pipeline against the simulator and
   against the closed-form ground truth (all units run hot, so the
   failure probability is ps^n + pf^n - ps^n*pf^n).

   Run with:  dune exec examples/sensor_filter_demo.exe *)

module Sf = Slimsim_models.Sensor_filter

let horizon = 1800.0

let () =
  Fmt.pr "%-4s %-12s %-12s %-22s %-10s %-8s@." "n" "closed-form" "ctmc"
    "simulator (CH 95%/0.02)" "states" "lumped";
  List.iter
    (fun n ->
      let model =
        match Slimsim.load_string (Sf.source ~n) with
        | Ok m -> m
        | Error e -> failwith e
      in
      let property =
        Printf.sprintf "P(<> [0, %g] %s)" horizon (Sf.goal_all_failed ~n)
      in
      let exact =
        match Slimsim.check_exact model ~property with
        | Ok r -> r
        | Error e -> failwith e
      in
      let sim =
        match
          Slimsim.check model ~property ~strategy:Slimsim.Strategy.Asap
            ~delta:0.05 ~eps:0.02 ()
        with
        | Ok r -> r
        | Error e -> failwith e
      in
      Fmt.pr "%-4d %-12.6f %-12.6f %.6f [%.4f,%.4f]  %-10d %-8d@." n
        (Sf.closed_form ~n ~horizon)
        exact.Slimsim.exact_probability sim.Slimsim.probability
        sim.Slimsim.ci_low sim.Slimsim.ci_high exact.Slimsim.states
        exact.Slimsim.lumped_states)
    [ 1; 2; 3 ]
