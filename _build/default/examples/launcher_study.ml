(* The §V launcher case study: probability of losing thruster control
   within a growing time bound, under each scheduling strategy, for the
   permanent and recoverable DPU fault variants (Figure 5).

   With permanent faults the model is strategy-insensitive (left
   graph); with recoverable faults ASAP restarts units before they have
   cooled down and performs worst (right graph).

   Run with:  dune exec examples/launcher_study.exe *)

module Launcher = Slimsim_models.Launcher

let horizons = [ 20.0; 60.0; 100.0 ]

let study variant label =
  let model =
    match Slimsim.load_string (Launcher.source ~variant) with
    | Ok m -> m
    | Error e -> failwith e
  in
  Fmt.pr "@.launcher with %s DPU faults (%a)@." label Slimsim_sta.Network.pp_summary
    (Slimsim.network model);
  Fmt.pr "%-8s" "u";
  List.iter
    (fun s -> Fmt.pr "%-14s" (Slimsim.Strategy.to_string s))
    Slimsim.Strategy.all_automated;
  Fmt.pr "@.";
  List.iter
    (fun u ->
      Fmt.pr "%-8g" u;
      List.iter
        (fun strategy ->
          let property =
            Printf.sprintf "P(<> [0, %g] %s)" u Launcher.goal_failure
          in
          match
            Slimsim.check model ~property ~strategy ~delta:0.1 ~eps:0.05 ()
          with
          | Ok r -> Fmt.pr "%-14.4f" r.Slimsim.probability
          | Error e -> failwith e)
        Slimsim.Strategy.all_automated;
      Fmt.pr "@.")
    horizons

let () =
  study `Permanent "permanent";
  study `Recoverable "recoverable"
