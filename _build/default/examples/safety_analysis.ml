(* Safety analysis on the benchmark models: fault trees (minimal cut
   sets) and an FMEA table, the COMPASS artifacts of §II-C, cross-checked
   against the statistical and exact analyses.

   Run with:  dune exec examples/safety_analysis.exe *)

module Cutsets = Slimsim_safety.Cutsets
module Sf = Slimsim_models.Sensor_filter
module Launcher = Slimsim_models.Launcher

let load src =
  match Slimsim.load_string src with Ok m -> m | Error e -> failwith e

let () =
  (* sensor/filter: the two banks give exactly two cut sets, and the
     Esary-Proschan evaluation coincides with the closed form *)
  let n = 2 in
  let model = load (Sf.source ~n) in
  let goal = Sf.goal_exhausted in
  Fmt.pr "== sensor/filter benchmark (n = %d) ==@." n;
  (match Slimsim.fault_tree model ~goal ~top:"system failed" with
  | Error e -> failwith e
  | Ok t ->
    Fmt.pr "%a@." Cutsets.pp_fault_tree t;
    let horizon = 1800.0 in
    Fmt.pr "fault-tree top probability: %.6f@."
      (Cutsets.top_probability t.Cutsets.cut_sets ~horizon);
    Fmt.pr "closed form:                %.6f@." (Sf.closed_form ~n ~horizon));
  (match Slimsim.fmea model ~goal with
  | Error e -> failwith e
  | Ok rows -> Fmt.pr "@.FMEA:@.%a@." Slimsim_safety.Fmea.pp_table rows);
  (* FDIR on the GPS: faults are all detected after acquisition, none
     isolable (one shared observable), and only the hot/transient
     faults recover *)
  Fmt.pr "@.== FDIR on the GPS (observable: gps.measurement, settle 150 s) ==@.";
  (let gps = load Slimsim_models.Gps.source in
   match Slimsim.fdir ~settle_time:150.0 gps ~observables:[ "gps.measurement" ] with
   | Error e -> failwith e
   | Ok verdicts -> Fmt.pr "%a@." Slimsim_safety.Fdir.pp_table verdicts);
  (* launcher: power loss is the shortest route to failure *)
  Fmt.pr "@.== launcher (permanent faults), cut sets up to order 3 ==@.";
  let launcher = load (Launcher.source ~variant:`Permanent) in
  match
    Slimsim.fault_tree ~max_order:3 launcher ~goal:Launcher.goal_failure
      ~top:"loss of thruster control"
  with
  | Error e -> failwith e
  | Ok t ->
    Fmt.pr "%a@." Cutsets.pp_fault_tree t;
    Fmt.pr "(order-4 sets — two DPUs per triplex — exist beyond this bound)@."
