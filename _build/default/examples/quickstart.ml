(* Quickstart: load the paper's GPS example (Listings 1-2), ask for the
   probability that a fault becomes visible within five minutes, and
   compare two strategies.

   Run with:  dune exec examples/quickstart.exe *)

let property = "P(<> [0, 300] gps in mode active and not gps.measurement)"

let () =
  let model =
    match Slimsim.load_string Slimsim_models.Gps.source with
    | Ok m -> m
    | Error e -> failwith e
  in
  Fmt.pr "model: %a@." Slimsim_sta.Network.pp_summary (Slimsim.network model);
  Fmt.pr "property: %s@." property;
  List.iter
    (fun strategy ->
      match
        Slimsim.check model ~property ~strategy ~delta:0.05 ~eps:0.01 ()
      with
      | Ok r ->
        Fmt.pr "  %-12s %a@."
          (Slimsim.Strategy.to_string strategy)
          Slimsim.pp_estimate r
      | Error e -> Fmt.pr "  %-12s error: %s@." (Slimsim.Strategy.to_string strategy) e)
    [ Slimsim.Strategy.Asap; Slimsim.Strategy.Progressive ];
  (* a single diagnostic trace *)
  match
    Slimsim.simulate_one model ~property ~strategy:Slimsim.Strategy.Progressive
      ~seed:7L
  with
  | Ok (verdict, steps) ->
    Fmt.pr "@.one random path (%d steps): %s@." (List.length steps)
      (Slimsim_sim.Path.verdict_to_string verdict);
    List.iteri
      (fun i (s : Slimsim_sim.Path.step_record) ->
        if i < 12 then
          Fmt.pr "  t=%-9.3f +%-8.3f %s@." s.at_time s.chose_delay s.description)
      steps
  | Error e -> Fmt.pr "trace error: %s@." e
